// Conservative parallel runtime (sim/plp.hpp): mailbox semantics, the
// deterministic (recv_time, src, seq) tie-break, quiescence on cyclic
// topologies, backpressure via staging, the hardware partitioner, the
// fig15-shaped workload's LP/worker invariance matrix, and the engine's
// SCSQ_SIM_LPS affinity plumbing.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/scsq.hpp"
#include "hw/lp_workload.hpp"
#include "hw/machine.hpp"
#include "obs/metrics.hpp"
#include "obs/sim_bridge.hpp"
#include "sim/plp.hpp"

namespace scsq::sim::plp {
namespace {

// ---------------------------------------------------------------------
// Mailbox
// ---------------------------------------------------------------------

Message msg(double recv, NodeId src, std::uint64_t seq, double value = 0.0) {
  Message m;
  m.send_time = 0.0;
  m.recv_time = recv;
  m.src = src;
  m.dst = 0;
  m.seq = seq;
  m.value = value;
  return m;
}

TEST(Mailbox, DrainReturnsPostedMessages) {
  Mailbox mb(0, 1, 1e-6, 8);
  LpStats stats;
  mb.post(msg(1.0, 1, 0), stats);
  mb.post(msg(2.0, 1, 1), stats);
  std::vector<Message> out;
  EXPECT_EQ(mb.drain(out), 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].recv_time, 1.0);
  EXPECT_DOUBLE_EQ(out[1].recv_time, 2.0);
  EXPECT_EQ(stats.mailbox_full, 0u);
  out.clear();
  EXPECT_EQ(mb.drain(out), 0u);
}

TEST(Mailbox, OverflowParksInStagingAndFlushes) {
  Mailbox mb(0, 1, 1e-6, 2);  // ring holds 2
  LpStats stats;
  mb.post(msg(1.0, 1, 0), stats);
  mb.post(msg(2.0, 1, 1), stats);
  mb.post(msg(3.0, 1, 2), stats);  // overflows into staging
  mb.post(msg(4.0, 1, 3), stats);
  EXPECT_EQ(stats.mailbox_full, 2u);
  // The clock promise may not overtake the oldest staged message.
  EXPECT_TRUE(mb.advance_clock(10.0));
  EXPECT_DOUBLE_EQ(mb.clock(), 3.0);
  std::vector<Message> out;
  EXPECT_EQ(mb.drain(out), 2u);
  EXPECT_TRUE(mb.flush());
  EXPECT_EQ(mb.drain(out), 2u);
  ASSERT_EQ(out.size(), 4u);
  // Once staging is empty the promise is free to advance fully.
  EXPECT_TRUE(mb.advance_clock(10.0));
  EXPECT_DOUBLE_EQ(mb.clock(), 10.0);
}

TEST(Mailbox, ClockIsMonotone) {
  Mailbox mb(0, 1, 1e-6, 4);
  EXPECT_TRUE(mb.advance_clock(5.0));
  EXPECT_FALSE(mb.advance_clock(4.0));  // never retreats
  EXPECT_FALSE(mb.advance_clock(5.0));  // no-op republish
  EXPECT_DOUBLE_EQ(mb.clock(), 5.0);
  EXPECT_TRUE(mb.advance_clock(6.0));
  EXPECT_DOUBLE_EQ(mb.clock(), 6.0);
}

// ---------------------------------------------------------------------
// Runtime basics
// ---------------------------------------------------------------------

TEST(PlpRuntime, TwoLpPingPongTerminates) {
  for (unsigned workers : {1u, 2u}) {
    Runtime rt(2);
    rt.set_uniform_lookahead(1e-6);
    std::vector<double> times;
    NodeId a = 0, b = 0;
    int remaining = 10;
    a = rt.add_node(0, [&](Runtime::Context& ctx, const Message& m) {
      times.push_back(ctx.now());
      if (remaining-- > 0) ctx.send(b, ctx.now() + 1e-6, 0, m.value + 1);
    });
    b = rt.add_node(1, [&](Runtime::Context& ctx, const Message& m) {
      ctx.send(a, ctx.now() + 1e-6, 0, m.value + 1);
    });
    rt.post_initial(a, 0.0, 0, 0.0);
    rt.run(workers);
    // a handles the initial stimulus plus 10 returns from b; each hop
    // advances the clock by one lookahead.
    ASSERT_EQ(times.size(), 11u) << "workers " << workers;
    EXPECT_DOUBLE_EQ(times.front(), 0.0);
    EXPECT_DOUBLE_EQ(times.back(), 20e-6);
    const auto totals = rt.total_stats();
    EXPECT_EQ(totals.msgs_sent, 20u);  // 10 each way, all cross-LP
    EXPECT_EQ(totals.msgs_recvd, 20u);
    EXPECT_GT(totals.null_updates, 0u);
  }
}

TEST(PlpRuntime, SameLpSendNeedsNoMailbox) {
  Runtime rt(1);
  int hits = 0;
  NodeId a = 0, b = 0;
  a = rt.add_node(0, [&](Runtime::Context& ctx, const Message&) {
    ++hits;
    ctx.send(b, ctx.now() + 1e-9, 0, 0.0);
  });
  b = rt.add_node(0, [&](Runtime::Context&, const Message&) { ++hits; });
  rt.post_initial(a, 1.0, 0, 0.0);
  rt.run(1);
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(rt.total_stats().msgs_sent, 0u);  // nothing crossed an LP
  EXPECT_EQ(rt.total_deliveries(), 2u);
}

// Same-timestamp messages from different LPs must be handled in
// (src, seq) order regardless of which mailbox delivered first.
TEST(PlpRuntime, SameTimestampCrossLpFifoBySourceKey) {
  for (unsigned workers : {1u, 3u}) {
    Runtime rt(3);
    rt.set_uniform_lookahead(1e-6);
    std::vector<std::pair<NodeId, double>> order;
    const NodeId sink = rt.add_node(0, [&](Runtime::Context&, const Message& m) {
      order.emplace_back(m.src, m.value);
    });
    // Two senders on distinct LPs, each emitting two messages that all
    // land at exactly t = 1.0 at the sink.
    auto make_sender = [&](int lp) {
      return rt.add_node(lp, [&, sink](Runtime::Context& ctx, const Message& m) {
        ctx.send(sink, 1.0, 0, m.value);
        ctx.send(sink, 1.0, 0, m.value + 1);
      });
    };
    const NodeId s1 = make_sender(1);
    const NodeId s2 = make_sender(2);
    // Fire s2 earlier in real delivery order than s1: arrival order at
    // the sink's mailboxes differs from the key order.
    rt.post_initial(s2, 0.25, 0, 10.0);
    rt.post_initial(s1, 0.5, 0, 20.0);
    rt.run(workers);
    ASSERT_EQ(order.size(), 4u);
    // Key order: src ascending, then per-source seq (emission) order.
    EXPECT_EQ(order[0].first, s1);
    EXPECT_DOUBLE_EQ(order[0].second, 20.0);
    EXPECT_EQ(order[1].first, s1);
    EXPECT_DOUBLE_EQ(order[1].second, 21.0);
    EXPECT_EQ(order[2].first, s2);
    EXPECT_DOUBLE_EQ(order[2].second, 10.0);
    EXPECT_EQ(order[3].first, s2);
    EXPECT_DOUBLE_EQ(order[3].second, 11.0);
  }
}

// A cycle of LPs with finite traffic must reach global quiescence (the
// null-message clocks, not event exhaustion alone, unblock the loop).
TEST(PlpRuntime, CyclicTopologyQuiesces) {
  constexpr int kLps = 4;
  for (unsigned workers : {1u, 4u}) {
    Runtime rt(kLps);
    rt.set_uniform_lookahead(1e-6);
    std::vector<NodeId> ring(kLps);
    int hops = 0;
    for (int i = 0; i < kLps; ++i) {
      ring[static_cast<std::size_t>(i)] =
          rt.add_node(i, [&, i](Runtime::Context& ctx, const Message& m) {
            ++hops;
            if (m.value > 0.0) {
              ctx.send(ring[static_cast<std::size_t>((i + 1) % kLps)], ctx.now() + 2e-6, 0,
                       m.value - 1);
            }
          });
    }
    rt.post_initial(ring[0], 0.0, 0, 25.0);
    rt.run(workers);
    EXPECT_EQ(hops, 26) << "workers " << workers;
    hops = 0;
  }
}

// Capacity-1 mailboxes force constant overflow into staging; results
// must be unchanged and the pressure must be visible in the stats.
TEST(PlpRuntime, TinyMailboxBackpressureIsLossless) {
  Runtime::Options options;
  options.mailbox_capacity = 2;  // ring rounds to the minimum
  Runtime rt(2, options);
  rt.set_uniform_lookahead(1e-6);
  int received = 0;
  const NodeId sink = rt.add_node(1, [&](Runtime::Context&, const Message&) { ++received; });
  const NodeId src = rt.add_node(0, [&, sink](Runtime::Context& ctx, const Message& m) {
    // Fan out a burst: far more same-window sends than ring slots.
    for (int i = 0; i < 64; ++i) {
      ctx.send(sink, ctx.now() + 1e-6 + 1e-9 * i, 0, m.value);
    }
  });
  rt.post_initial(src, 0.0, 0, 0.0);
  rt.run(2);
  EXPECT_EQ(received, 64);
  const auto totals = rt.total_stats();
  EXPECT_EQ(totals.msgs_sent, 64u);
  EXPECT_EQ(totals.msgs_recvd, 64u);
  EXPECT_GT(totals.mailbox_full, 0u);
}

// ---------------------------------------------------------------------
// Partitioner
// ---------------------------------------------------------------------

TEST(Partition, PsetsStayWholeAndIoFollows) {
  const auto cost = hw::CostModel::lofar();
  const auto part = hw::make_partition(cost, 4);
  EXPECT_EQ(part.lp_count, 4);
  for (int rank = 0; rank < cost.compute_node_count(); ++rank) {
    const int pset = cost.pset_of(rank);
    EXPECT_EQ(part.bg_compute_lp[static_cast<std::size_t>(rank)],
              part.bg_io_lp[static_cast<std::size_t>(pset)])
        << "rank " << rank;
  }
  // Contiguous, onto: every LP owns at least one pset when lps == psets.
  std::vector<int> seen;
  for (int lp : part.bg_io_lp) seen.push_back(lp);
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Partition, ClampsToPsetCountAndFloorsAtOne) {
  const auto cost = hw::CostModel::lofar();  // 4 psets
  EXPECT_EQ(hw::make_partition(cost, 64).lp_count, 4);
  EXPECT_EQ(hw::make_partition(cost, 0).lp_count, 1);
  EXPECT_EQ(hw::make_partition(cost, -3).lp_count, 1);
  const auto one = hw::make_partition(cost, 1);
  for (int lp : one.bg_compute_lp) EXPECT_EQ(lp, 0);
  for (int lp : one.be_lp) EXPECT_EQ(lp, 0);
  for (int lp : one.fe_lp) EXPECT_EQ(lp, 0);
}

TEST(Partition, LookaheadsAreStrictlyPositive) {
  const auto cost = hw::CostModel::lofar();
  const auto part = hw::make_partition(cost, 2);
  EXPECT_GT(part.torus_lookahead_s, 0.0);
  EXPECT_GT(part.ethernet_lookahead_s, 0.0);
  EXPECT_GT(part.tree_lookahead_s, 0.0);
  EXPECT_GT(part.min_lookahead_s(), 0.0);
  EXPECT_DOUBLE_EQ(part.torus_lookahead_s, cost.torus.min_link_latency());
  EXPECT_DOUBLE_EQ(part.ethernet_lookahead_s, cost.ethernet.min_link_latency());
}

TEST(Partition, LpOfCoversEveryLocation) {
  const auto cost = hw::CostModel::lofar();
  const auto part = hw::make_partition(cost, 4);
  for (int rank = 0; rank < cost.compute_node_count(); ++rank) {
    const int lp = part.lp_of(hw::Location{hw::kBlueGene, rank});
    EXPECT_GE(lp, 0);
    EXPECT_LT(lp, part.lp_count);
  }
  for (int n = 0; n < cost.backend_nodes; ++n) {
    EXPECT_EQ(part.lp_of(hw::Location{hw::kBackEnd, n}),
              part.be_lp[static_cast<std::size_t>(n)]);
  }
  for (int n = 0; n < cost.frontend_nodes; ++n) {
    EXPECT_EQ(part.lp_of(hw::Location{hw::kFrontEnd, n}),
              part.fe_lp[static_cast<std::size_t>(n)]);
  }
}

// ---------------------------------------------------------------------
// Workload invariance: the tentpole determinism contract
// ---------------------------------------------------------------------

TEST(LpWorkload, InvariantAcrossLpAndWorkerCounts) {
  const auto cost = hw::CostModel::lofar();
  hw::LpWorkloadOptions options;
  options.messages_per_backend = 48;
  const auto reference = hw::run_lp_workload(cost, 1, 1, options);
  EXPECT_GT(reference.checksum, 0u);
  EXPECT_EQ(reference.merged,
            static_cast<std::uint64_t>(cost.backend_nodes) *
                static_cast<std::uint64_t>(options.messages_per_backend));
  EXPECT_GT(reference.end_time_s, 0.0);
  for (int lps : {1, 2, 4, 8}) {
    // Workers forced above 1 wherever the LP count allows it, so the
    // multi-threaded path runs even on a single-core host (the OS still
    // interleaves; determinism may not depend on the schedule).
    for (unsigned workers : {1u, 2u, 0u}) {
      const auto r = hw::run_lp_workload(cost, lps, workers, options);
      EXPECT_EQ(r.checksum, reference.checksum) << "lps " << lps << " workers " << workers;
      EXPECT_EQ(r.merged, reference.merged) << "lps " << lps << " workers " << workers;
      EXPECT_EQ(r.events, reference.events) << "lps " << lps << " workers " << workers;
      EXPECT_DOUBLE_EQ(r.end_time_s, reference.end_time_s)
          << "lps " << lps << " workers " << workers;
    }
  }
  // lps = 8 clamps to the 4 psets of the LOFAR machine.
  EXPECT_EQ(hw::run_lp_workload(cost, 8, 1, options).lp_count, 4);
}

TEST(LpWorkload, StatsAccountForEveryMessage) {
  const auto cost = hw::CostModel::lofar();
  hw::LpWorkloadOptions options;
  options.messages_per_backend = 16;
  const auto r = hw::run_lp_workload(cost, 4, 2, options);
  EXPECT_EQ(r.totals.msgs_sent, r.totals.msgs_recvd);
  EXPECT_GT(r.totals.windows, 0u);
  EXPECT_GT(r.totals.null_updates, 0u);
  EXPECT_EQ(r.per_lp.size(), 4u);
  std::uint64_t events = 0;
  for (const auto& s : r.per_lp) events += s.events;
  EXPECT_EQ(events, r.events);
}

// ---------------------------------------------------------------------
// Obs bridge
// ---------------------------------------------------------------------

TEST(PlpBridge, PublishesPerLpAndTotalSeries) {
  const auto r = hw::run_lp_workload(hw::CostModel::lofar(), 2, 1, {});
  obs::Registry registry;
  obs::bridge_plp_stats(registry, r.per_lp);
  std::ostringstream os;
  registry.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("sim.lp.events"), std::string::npos);
  EXPECT_NE(json.find("sim.lp.total.msgs_sent"), std::string::npos);
  EXPECT_NE(json.find("sim.lp.count"), std::string::npos);
  // Idempotent: re-bridging does not double-count.
  obs::bridge_plp_stats(registry, r.per_lp);
  std::ostringstream os2;
  registry.write_json(os2);
  EXPECT_EQ(json, os2.str());
}

// ---------------------------------------------------------------------
// Live runtime gauges (the telemetry sampler's mid-run view)
// ---------------------------------------------------------------------

TEST(LpLive, MonitorSamplesMidRunWithoutPerturbingResults) {
  // The monitor thread reads live atomics while workers run — this test
  // under TSAN is the data-race gate for the whole live-sample path.
  const auto cost = hw::CostModel::lofar();
  hw::LpWorkloadOptions plain;
  plain.messages_per_backend = 48;
  const auto reference = hw::run_lp_workload(cost, 4, 2, plain);

  hw::LpWorkloadOptions monitored = plain;
  std::atomic<int> calls{0};
  std::vector<sim::plp::LpLiveSample> last;
  std::mutex mu;
  monitored.monitor_interval_ms = 1;
  monitored.monitor = [&](const std::vector<sim::plp::LpLiveSample>& s) {
    calls.fetch_add(1, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(mu);
    last = s;
  };
  const auto r = hw::run_lp_workload(cost, 4, 2, monitored);
  EXPECT_EQ(r.checksum, reference.checksum);
  EXPECT_EQ(r.events, reference.events);
  EXPECT_DOUBLE_EQ(r.end_time_s, reference.end_time_s);

  // The final (post-join) sample reflects the completed run.
  EXPECT_GE(calls.load(), 1);
  ASSERT_EQ(last.size(), 4u);
  std::uint64_t events = 0;
  std::uint64_t sent = 0;
  std::uint64_t recvd = 0;
  for (const auto& s : last) {
    events += s.events;
    sent += s.msgs_sent;
    recvd += s.msgs_recvd;
    EXPECT_GE(s.horizon_s, 0.0);
    EXPECT_EQ(s.inbox_depth, 0u);  // drained at completion
    EXPECT_GE(s.running_s, 0.0);   // live timing was enabled by the monitor
    EXPECT_GE(s.blocked_s, 0.0);
  }
  EXPECT_EQ(events, r.events);
  EXPECT_EQ(sent, recvd);  // every sent message was received
  EXPECT_EQ(sent, r.totals.msgs_sent);
}

TEST(LpLive, BridgePublishesGaugesAndMonotoneCounters) {
  const auto cost = hw::CostModel::lofar();
  hw::LpWorkloadOptions options;
  options.messages_per_backend = 16;
  std::vector<sim::plp::LpLiveSample> final_sample;
  std::mutex mu;
  options.monitor = [&](const std::vector<sim::plp::LpLiveSample>& s) {
    const std::lock_guard<std::mutex> lock(mu);
    final_sample = s;
  };
  hw::run_lp_workload(cost, 2, 1, options);
  ASSERT_EQ(final_sample.size(), 2u);

  obs::Registry registry;
  obs::bridge_plp_live(registry, final_sample);
  std::ostringstream os;
  registry.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("sim.lp.live.events"), std::string::npos);
  EXPECT_NE(json.find("sim.lp.live.mailbox_depth"), std::string::npos);
  EXPECT_NE(json.find("sim.lp.live.null_ratio"), std::string::npos);
  EXPECT_NE(json.find("sim.lp.live.clock_lag_s"), std::string::npos);
  // At completion every LP's horizon equals the furthest clock: lag 0.
  for (std::size_t i = 0; i < final_sample.size(); ++i) {
    const double lag =
        registry.gauge("sim.lp.live.clock_lag_s", {{"lp", std::to_string(i)}}).value();
    EXPECT_GE(lag, 0.0);
  }
  // Re-bridging the same sample is idempotent (set_total/gauge set).
  obs::bridge_plp_live(registry, final_sample);
  std::ostringstream os2;
  registry.write_json(os2);
  EXPECT_EQ(json, os2.str());
}

// ---------------------------------------------------------------------
// Engine affinity (SCSQ_SIM_LPS)
// ---------------------------------------------------------------------

TEST(EngineSimLps, ReportsAreIdenticalAcrossLpCounts) {
  const char* query =
      "select extract(b) from sp a, sp b "
      "where b=sp(streamof(count(extract(a))),'bg',0) "
      "and a=sp(gen_array(50000,6),'bg',1);";
  ScsqConfig base;
  base.exec.sim_lps = 1;
  Scsq seq(base);
  const auto r1 = seq.run(query);
  for (int lps : {2, 4}) {
    ScsqConfig cfg;
    cfg.exec.sim_lps = lps;
    Scsq scsq(cfg);
    const auto r = scsq.run(query);
    ASSERT_EQ(r.results.size(), r1.results.size()) << "lps " << lps;
    EXPECT_DOUBLE_EQ(r.elapsed_s, r1.elapsed_s) << "lps " << lps;
    EXPECT_EQ(r.stream_bytes, r1.stream_bytes) << "lps " << lps;
    // Affinity is stamped from the partition of the requested size.
    ASSERT_EQ(r.rps.size(), r1.rps.size());
    for (const auto& rp : r.rps) {
      EXPECT_GE(rp.lp, 0);
      EXPECT_LT(rp.lp, lps);
    }
    // At 1 LP every RP collapses to LP 0.
    for (const auto& rp : r1.rps) EXPECT_EQ(rp.lp, 0);
  }
}

}  // namespace
}  // namespace scsq::sim::plp
