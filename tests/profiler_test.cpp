// Profiler subsystem: LogHistogram quantiles, critical-path extraction
// and attribution normalization on hand-built DAGs (the analysis layer
// is pure functions of Profile data), and the engine-built profile of a
// real merge query (the paper's Fig. 8 shape).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/scsq.hpp"
#include "obs/histogram.hpp"
#include "obs/profiler.hpp"
#include "util/json.hpp"

namespace scsq::obs {
namespace {

// --- LogHistogram ---

TEST(LogHistogram, CountsSumMinMax) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty histogram
  h.observe(1e-3);
  h.observe(2e-3);
  h.observe(4e-3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 7e-3);
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 4e-3);
  EXPECT_NEAR(h.mean(), 7e-3 / 3.0, 1e-12);
}

TEST(LogHistogram, QuantilesAreOrderedAndClamped) {
  LogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i) * 1e-6);
  const double p50 = h.p50();
  const double p95 = h.p95();
  const double p99 = h.p99();
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Log-bucket interpolation: within a bucket-width of the exact ranks.
  EXPECT_NEAR(p50, 500e-6, 100e-6);
  EXPECT_NEAR(p95, 950e-6, 150e-6);
  // Quantiles never escape the observed range.
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
  EXPECT_DOUBLE_EQ(h.quantile(1.0), h.max());
}

TEST(LogHistogram, SingleObservationIsExact) {
  LogHistogram h;
  h.observe(3.7e-4);
  EXPECT_DOUBLE_EQ(h.p50(), 3.7e-4);
  EXPECT_DOUBLE_EQ(h.p99(), 3.7e-4);
}

TEST(LogHistogram, OutOfRangeValuesClampToEdgeBuckets) {
  LogHistogram h(1e-6, 1e0, 24);
  h.observe(1e-9);  // below lo
  h.observe(1e3);   // above hi
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 1e-9);
  EXPECT_DOUBLE_EQ(h.max(), 1e3);
  EXPECT_GE(h.quantile(0.01), h.min());
  EXPECT_LE(h.quantile(0.99), h.max());
}

TEST(LogHistogram, MergeCombines) {
  LogHistogram a, b;
  a.observe(1e-4);
  a.observe(2e-4);
  b.observe(8e-4);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 11e-4);
  EXPECT_DOUBLE_EQ(a.min(), 1e-4);
  EXPECT_DOUBLE_EQ(a.max(), 8e-4);
}

// --- Hand-built DAG helpers ---

ProfileNode node(std::uint64_t rp, double drive, double marshal = 0.0,
                 double stall = 0.0, double recv_wait = 0.0, double demarshal = 0.0) {
  ProfileNode n;
  n.rp = rp;
  n.loc = "bg:" + std::to_string(rp);
  n.op = "test";
  n.drive_s = drive;
  n.marshal_s = marshal;
  n.send_stall_s = stall;
  n.recv_wait_s = recv_wait;
  n.demarshal_s = demarshal;
  return n;
}

ProfileEdge edge(std::uint64_t src, std::uint64_t dst, double transit,
                 double window_wait = 0.0, std::uint64_t payload = 1000,
                 std::uint64_t wire = 1024) {
  ProfileEdge e;
  e.src_rp = src;
  e.dst_rp = dst;
  e.type = "mpi";
  e.frames = 1;
  e.payload_bytes = payload;
  e.wire_bytes = wire;
  e.transit_s = transit;
  e.window_wait_s = window_wait;
  e.latency.observe(transit);
  return e;
}

/// The Fig. 8 merge shape: two producers (rp1, rp2) into a merge
/// consumer (rp3), which feeds the client (rp0).
Profile merge_profile() {
  Profile p;
  p.elapsed_s = 10.0;
  p.setup_s = 1.0;
  p.nodes.push_back(node(0, 0.5, 0, 0, /*recv_wait=*/0.3, /*demarshal=*/0.1));
  p.nodes.push_back(node(1, 2.0, /*marshal=*/0.5, /*stall=*/0.25));
  p.nodes.push_back(node(2, 4.0, /*marshal=*/0.5, /*stall=*/0.25));
  p.nodes.push_back(node(3, 3.0, /*marshal=*/0.1, 0, /*recv_wait=*/1.0, /*demarshal=*/0.5));
  p.edges.push_back(edge(1, 3, 0.6, /*window_wait=*/0.1));
  p.edges.push_back(edge(2, 3, 0.8, /*window_wait=*/0.1));
  p.edges.push_back(edge(3, 0, 0.2));
  return p;
}

// --- Critical path ---

TEST(CriticalPath, MergeDagPicksHeavierProducer) {
  const Profile p = merge_profile();
  // rp2 (active 4.75) beats rp1 (active 2.75); chain continues through
  // the merge node to the client sink.
  const std::vector<std::uint64_t> expected{2, 3, 0};
  EXPECT_EQ(p.critical_path(), expected);
}

TEST(CriticalPath, TieBreaksTowardSmallerRpId) {
  Profile p = merge_profile();
  // Make rp1 and rp2 chains exactly equal: identical nodes and edges.
  p.nodes[2] = node(2, 2.0, 0.5, 0.25);
  p.edges[1] = edge(2, 3, 0.6, 0.1);
  const std::vector<std::uint64_t> expected{1, 3, 0};
  EXPECT_EQ(p.critical_path(), expected);
}

TEST(CriticalPath, SingleNodeAndEmptyProfile) {
  Profile empty;
  EXPECT_TRUE(empty.critical_path().empty());

  Profile single;
  single.elapsed_s = 1.0;
  single.nodes.push_back(node(7, 0.4));
  const std::vector<std::uint64_t> expected{7};
  EXPECT_EQ(single.critical_path(), expected);
}

TEST(CriticalPath, DisconnectedFlowsPickHeaviestComponent) {
  Profile p;
  p.elapsed_s = 5.0;
  // Component A: 1 -> 2, total 1.0 + 0.1 + 0.5 = 1.6.
  p.nodes.push_back(node(1, 1.0));
  p.nodes.push_back(node(2, 0.5));
  p.edges.push_back(edge(1, 2, 0.1));
  // Component B: lone heavy node 9 at 3.0 — beats the A chain.
  p.nodes.push_back(node(9, 3.0));
  const std::vector<std::uint64_t> expected{9};
  EXPECT_EQ(p.critical_path(), expected);
}

TEST(CriticalPath, EdgesWithMissingEndpointsAreIgnored) {
  Profile p;
  p.elapsed_s = 1.0;
  p.nodes.push_back(node(1, 0.5));
  p.edges.push_back(edge(1, 42, 10.0));  // dst does not exist
  p.edges.push_back(edge(43, 1, 10.0));  // src does not exist
  const std::vector<std::uint64_t> expected{1};
  EXPECT_EQ(p.critical_path(), expected);
}

// --- Attribution ---

double slice(const Attribution& a, const std::string& cause) {
  for (const auto& s : a.slices) {
    if (s.cause == cause) return s.attributed_s;
  }
  ADD_FAILURE() << "missing attribution slice '" << cause << "'";
  return 0.0;
}

TEST(Attribution, SumsToElapsedWithIdleResidual) {
  const Profile p = merge_profile();
  const Attribution a = p.attribution();
  // Raw cause seconds undershoot the 9 s run window, so an explicit
  // idle slice makes the total exact.
  EXPECT_NEAR(a.attributed_total_s(), p.elapsed_s, 1e-12);
  EXPECT_DOUBLE_EQ(slice(a, "setup"), 1.0);
  EXPECT_GT(slice(a, "idle"), 0.0);
  double share_total = 0.0;
  for (const auto& s : a.slices) share_total += s.share;
  EXPECT_NEAR(share_total, 1.0, 1e-9);
}

TEST(Attribution, OverlapScalesDownToElapsed) {
  Profile p = merge_profile();
  p.elapsed_s = 3.0;  // raw cause time now exceeds the 2 s run window
  const Attribution a = p.attribution();
  EXPECT_NEAR(a.attributed_total_s(), 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(slice(a, "idle"), 0.0);
  // Scaled slices keep their raw measurements visible.
  for (const auto& s : a.slices) {
    if (s.cause != "setup" && s.cause != "idle") {
      EXPECT_LE(s.attributed_s, s.raw_s);
    }
  }
}

TEST(Attribution, PacketizationShareOfOccupancy) {
  Profile p;
  p.elapsed_s = 2.0;
  p.nodes.push_back(node(1, 0.1));
  p.nodes.push_back(node(2, 0.1));
  // 100 B payload in a 1024 B wire slot: ~90% of the occupancy is waste.
  auto e = edge(1, 2, 1.0, 0.0, /*payload=*/100, /*wire=*/1024);
  p.edges.push_back(e);
  const Attribution a = p.attribution();
  const double wire = slice(a, "link.wire");
  const double waste = slice(a, "link.packetization");
  EXPECT_NEAR(waste / (wire + waste), (1024.0 - 100.0) / 1024.0, 1e-9);
  EXPECT_NEAR(a.attributed_total_s(), 2.0, 1e-12);
}

TEST(Attribution, EmptyProfileIsAllIdle) {
  Profile p;
  p.elapsed_s = 1.0;
  const Attribution a = p.attribution();
  EXPECT_NEAR(a.attributed_total_s(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(slice(a, "idle"), 1.0);
}

// --- Rendering and JSON ---

TEST(ProfileReport, TextRenderHasTreeCriticalPathAndTotal) {
  const Profile p = merge_profile();
  std::ostringstream os;
  p.render_text(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("EXPLAIN ANALYZE"), std::string::npos);
  EXPECT_NE(text.find("critical path: rp#2 -> rp#3 -> rp#0"), std::string::npos);
  EXPECT_NE(text.find("[critical]"), std::string::npos);
  EXPECT_NE(text.find("link.packetization"), std::string::npos);
  EXPECT_NE(text.find("total"), std::string::npos);
}

TEST(ProfileReport, JsonParsesAndHoldsInvariant) {
  const Profile p = merge_profile();
  const auto doc = util::json::parse(p.json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.find("elapsed_s")->as_number(), 10.0);
  const auto* attribution = doc.find("attribution");
  ASSERT_NE(attribution, nullptr);
  EXPECT_NEAR(attribution->find("attributed_total_s")->as_number(), 10.0, 1e-9);
  ASSERT_TRUE(doc.find("critical_path")->is_array());
  EXPECT_EQ(doc.find("critical_path")->as_array().size(), 3u);
  EXPECT_EQ(doc.find("nodes")->as_array().size(), 4u);
  EXPECT_EQ(doc.find("edges")->as_array().size(), 3u);
}

// --- Engine-built profile (end-to-end) ---

TEST(EngineProfile, MergeQueryAttributionSumsToElapsed) {
  ScsqConfig cfg;
  cfg.exec.buffer_bytes = 16 * 1024;
  Scsq scsq(cfg);
  auto report = scsq.run(
      "select extract(c) from sp a, sp b, sp c"
      " where c=sp(count(merge({a,b})), 'bg',0)"
      " and a=sp(gen_array(100000,3),'bg',1)"
      " and b=sp(gen_array(100000,3),'bg',2);");
  ASSERT_EQ(report.results.size(), 1u);

  const Profile p = scsq.engine().profile(report);
  EXPECT_EQ(p.nodes.size(), 4u);  // client + merge + 2 producers
  EXPECT_EQ(p.edges.size(), 3u);
  EXPECT_DOUBLE_EQ(p.elapsed_s, report.elapsed_s);

  // The attribution invariant the CI gate checks (±0.1%).
  const Attribution a = p.attribution();
  EXPECT_NEAR(a.attributed_total_s(), report.elapsed_s, report.elapsed_s * 1e-3);

  // MPI edges round wire bytes up to full torus packets.
  for (const auto& e : p.edges) {
    EXPECT_GE(e.wire_bytes, e.payload_bytes);
    if (e.type == "mpi") {
      EXPECT_EQ(e.wire_bytes % 1024, 0u);
    }
    EXPECT_EQ(e.latency.count(), e.frames);
  }

  // The path runs producer -> merge -> client.
  const auto path = p.critical_path();
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.back(), 0u);  // the client manager is the sink

  // Per-RP sim-time accounting is live: producers did work, the merge
  // node waited on inboxes and de-marshaled.
  for (const auto& n : p.nodes) {
    if (n.op == "gen_array") {
      EXPECT_GT(n.marshal_s, 0.0);
    }
    if (n.op == "count") {
      EXPECT_GT(n.demarshal_s, 0.0);
      EXPECT_GT(n.bytes_received, 0u);
    }
  }

  // The JSON export of the same profile parses and keeps the invariant.
  const auto doc = util::json::parse(p.json());
  EXPECT_NEAR(doc.find("attribution")->find("attributed_total_s")->as_number(),
              report.elapsed_s, report.elapsed_s * 1e-3);
}

TEST(EngineProfile, SingleRpQueryDegeneratesGracefully) {
  Scsq scsq;
  auto report = scsq.run("select 1+2;");
  const Profile p = scsq.engine().profile(report);
  ASSERT_EQ(p.nodes.size(), 1u);  // just the client manager
  EXPECT_TRUE(p.edges.empty());
  const std::vector<std::uint64_t> expected{0};
  EXPECT_EQ(p.critical_path(), expected);
  EXPECT_NEAR(p.attribution().attributed_total_s(), p.elapsed_s, 1e-12);
}

}  // namespace
}  // namespace scsq::obs
