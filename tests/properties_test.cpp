// Property-based and parameterized sweeps over the whole stack:
// invariants that must hold for every buffer size, buffering mode,
// topology, seed and workload — not just the calibrated defaults.
#include <gtest/gtest.h>

#include <sstream>

#include "core/scsq.hpp"
#include "funcs/fft.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "transport/frame.hpp"
#include "transport/marshal.hpp"
#include "util/rng.hpp"

namespace scsq {
namespace {

using catalog::Bag;
using catalog::Object;
using catalog::SynthArray;

// ---------------------------------------------------------------------
// End-to-end invariants across buffer sizes and buffering modes
// ---------------------------------------------------------------------

struct TransportConfig {
  std::uint64_t buffer_bytes;
  int send_buffers;
};

class TransportSweep : public ::testing::TestWithParam<TransportConfig> {};

TEST_P(TransportSweep, P2pCountAndByteConservation) {
  const auto& cfg = GetParam();
  ScsqConfig sc;
  sc.exec.buffer_bytes = cfg.buffer_bytes;
  sc.exec.send_buffers = cfg.send_buffers;
  Scsq scsq(sc);
  auto r = scsq.run(
      "select extract(b) from sp a, sp b "
      "where b=sp(streamof(count(extract(a))),'bg',0) "
      "and a=sp(gen_array(100000,12),'bg',1);");
  ASSERT_EQ(r.results.size(), 1u);
  EXPECT_EQ(r.results[0].as_int(), 12);
  // Byte conservation across the a->b connection.
  for (const auto& rp : r.rps) {
    if (rp.loc == hw::Location{"bg", 0}) {
      EXPECT_GE(rp.bytes_received, 12u * 100'000u);
    }
  }
  // Bandwidth can never exceed the torus link rate.
  const double mbps = 12.0 * 100'000 * 8 / r.elapsed_s / 1e6;
  EXPECT_LE(mbps, 1400.0 + 1e-6) << "faster than the 1.4 Gbit/s torus link";
}

TEST_P(TransportSweep, MergeCountInvariant) {
  const auto& cfg = GetParam();
  ScsqConfig sc;
  sc.exec.buffer_bytes = cfg.buffer_bytes;
  sc.exec.send_buffers = cfg.send_buffers;
  Scsq scsq(sc);
  auto r = scsq.run(
      "select extract(c) from sp a, sp b, sp c "
      "where c=sp(count(merge({a,b})), 'bg',0) "
      "and a=sp(gen_array(50000,7),'bg',1) "
      "and b=sp(gen_array(50000,9),'bg',4);");
  ASSERT_EQ(r.results.size(), 1u);
  EXPECT_EQ(r.results[0].as_int(), 16);
}

INSTANTIATE_TEST_SUITE_P(
    BuffersAndModes, TransportSweep,
    ::testing::Values(TransportConfig{128, 1}, TransportConfig{128, 2},
                      TransportConfig{1000, 1}, TransportConfig{1000, 2},
                      TransportConfig{1024, 2}, TransportConfig{4097, 1},
                      TransportConfig{65536, 2}, TransportConfig{1'000'000, 1},
                      TransportConfig{1'000'000, 2}),
    [](const auto& info) {
      return "buf" + std::to_string(info.param.buffer_bytes) + "x" +
             std::to_string(info.param.send_buffers);
    });

// ---------------------------------------------------------------------
// Inbound queries: totals correct for every (query, n)
// ---------------------------------------------------------------------

class InboundSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(InboundSweep, TotalsAndNicCeiling) {
  const auto [query_no, n] = GetParam();
  std::ostringstream q;
  const char* a_alloc = (query_no % 2 == 1) ? "1" : "urr('be')";
  if (query_no <= 2) {
    q << "select extract(c) from bag of sp a, sp b, sp c, integer n"
      << " where c=sp(extract(b), 'bg') and b=sp(count(merge(a)), 'bg')"
      << " and a=spv((select gen_array(200000,6) from integer i where i in iota(1,n)),"
      << " 'be', " << a_alloc << ") and n=" << n << ";";
  } else {
    const char* b_alloc = (query_no <= 4) ? "inPset(1)" : "psetrr()";
    q << "select extract(c) from bag of sp a, bag of sp b, sp c, integer n"
      << " where c=sp(streamof(sum(merge(b))), 'bg')"
      << " and b=spv((select streamof(count(extract(p))) from sp p where p in a), 'bg', "
      << b_alloc << ")"
      << " and a=spv((select gen_array(200000,6) from integer i where i in iota(1,n)),"
      << " 'be', " << a_alloc << ") and n=" << n << ";";
  }
  Scsq scsq;
  auto r = scsq.run(q.str());
  ASSERT_EQ(r.results.size(), 1u) << q.str();
  EXPECT_EQ(r.results[0].as_int(), 6 * n);
  // Inbound bandwidth cannot exceed n (or 4) back-end NICs at 1 Gbit/s.
  const double mbps = 6.0 * n * 200'000 * 8 / r.elapsed_s / 1e6;
  EXPECT_LE(mbps, std::min(n, 4) * 1000.0);
}

std::vector<std::pair<int, int>> inbound_grid() {
  std::vector<std::pair<int, int>> out;
  for (int q = 1; q <= 6; ++q) {
    for (int n : {1, 3, 5}) out.emplace_back(q, n);
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Queries, InboundSweep, ::testing::ValuesIn(inbound_grid()),
                         [](const auto& info) {
                           return "Q" + std::to_string(info.param.first) + "n" +
                                  std::to_string(info.param.second);
                         });

// ---------------------------------------------------------------------
// Simulation determinism
// ---------------------------------------------------------------------

TEST(Determinism, IdenticalRunsBitExact) {
  auto run_once = [] {
    Scsq scsq;
    return scsq
        .run("select extract(c) from sp a, sp b, sp c "
             "where c=sp(count(merge({a,b})), 'bg',0) "
             "and a=sp(gen_array(300000,10),'bg',1) "
             "and b=sp(gen_array(300000,10),'bg',2);")
        .elapsed_s;
  };
  const double t1 = run_once();
  const double t2 = run_once();
  EXPECT_EQ(t1, t2);  // bit-exact, not just close
}

// ---------------------------------------------------------------------
// Torus routing properties over many geometries
// ---------------------------------------------------------------------

class TorusGeometry : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TorusGeometry, RoutesAreMinimalNeighborPaths) {
  const auto [x, y, z] = GetParam();
  net::Torus3D t(x, y, z);
  util::Rng rng(static_cast<std::uint64_t>(x * 10000 + y * 100 + z));
  for (int i = 0; i < 100; ++i) {
    int a = static_cast<int>(rng.uniform_int(0, t.node_count() - 1));
    int b = static_cast<int>(rng.uniform_int(0, t.node_count() - 1));
    auto path = t.route(a, b);
    EXPECT_EQ(path.front(), a);
    EXPECT_EQ(path.back(), b);
    EXPECT_EQ(static_cast<int>(path.size()) - 1, t.hop_distance(a, b));
    for (std::size_t j = 0; j + 1 < path.size(); ++j) {
      EXPECT_EQ(t.hop_distance(path[j], path[j + 1]), 1);
    }
    // Hop distance is bounded by the sum of half-dimensions.
    EXPECT_LE(t.hop_distance(a, b), x / 2 + y / 2 + z / 2 + 3);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, TorusGeometry,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 2, 2},
                                           std::tuple{4, 4, 2}, std::tuple{8, 8, 8},
                                           std::tuple{5, 3, 7}, std::tuple{16, 1, 1}));

// ---------------------------------------------------------------------
// FrameCutter conservation over random workloads
// ---------------------------------------------------------------------

class CutterSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CutterSeed, ConservesBytesAndObjects) {
  util::Rng rng(GetParam());
  const std::uint64_t buffer = static_cast<std::uint64_t>(rng.uniform_int(1, 10'000));
  transport::FrameCutter cutter(buffer);
  std::uint64_t pushed_bytes = 0;
  std::size_t pushed_objects = 0;
  std::uint64_t frame_bytes = 0;
  std::size_t frame_objects = 0;
  std::uint64_t max_frame = 0;
  const int n = static_cast<int>(rng.uniform_int(1, 200));
  std::vector<transport::Frame> scratch;  // reused across pushes, as the sender does
  for (int i = 0; i < n; ++i) {
    Object obj{SynthArray{static_cast<std::uint64_t>(rng.uniform_int(0, 50'000)), 0}};
    pushed_bytes += obj.marshaled_size();
    pushed_objects += 1;
    scratch.clear();
    cutter.push(std::move(obj), scratch);
    for (auto& f : scratch) {
      frame_bytes += f.bytes;
      frame_objects += f.objects.size();
      max_frame = std::max(max_frame, f.bytes);
      EXPECT_EQ(f.bytes, buffer);  // all non-final frames are full
    }
  }
  auto last = cutter.finish();
  frame_bytes += last.bytes;
  frame_objects += last.objects.size();
  EXPECT_TRUE(last.eos);
  EXPECT_EQ(frame_bytes, pushed_bytes);
  EXPECT_EQ(frame_objects, pushed_objects);
  EXPECT_LE(max_frame, buffer);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutterSeed,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

// ---------------------------------------------------------------------
// Marshal round-trips over randomly generated object trees
// ---------------------------------------------------------------------

class MarshalSeed : public ::testing::TestWithParam<std::uint64_t> {};

Object random_object(util::Rng& rng, int depth) {
  switch (rng.uniform_int(0, depth > 0 ? 7 : 6)) {
    case 0: return Object{};
    case 1: return Object{rng.uniform_int(-1'000'000, 1'000'000)};
    case 2: return Object{rng.uniform(-1e9, 1e9)};
    case 3: return Object{rng.uniform_int(0, 1) == 1};
    case 4: {
      std::string s(static_cast<std::size_t>(rng.uniform_int(0, 64)), '\0');
      for (auto& c : s) c = static_cast<char>(rng.uniform_int(32, 126));
      return Object{std::move(s)};
    }
    case 5: {
      std::vector<double> a(static_cast<std::size_t>(rng.uniform_int(0, 32)));
      for (auto& v : a) v = rng.uniform(-1, 1);
      return Object{std::move(a)};
    }
    case 6:
      return Object{catalog::SpHandle{static_cast<std::uint64_t>(rng.uniform_int(0, 1000)),
                                      rng.uniform_int(0, 1) ? "bg" : "be"}};
    default: {
      Bag bag;
      const int k = static_cast<int>(rng.uniform_int(0, 5));
      for (int i = 0; i < k; ++i) bag.push_back(random_object(rng, depth - 1));
      return Object{std::move(bag)};
    }
  }
}

TEST_P(MarshalSeed, RoundTripRandomTrees) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    Object obj = random_object(rng, 3);
    std::vector<std::uint8_t> buf;
    transport::marshal(obj, buf);
    std::size_t off = 0;
    Object back = transport::unmarshal(buf, off);
    EXPECT_EQ(off, buf.size());
    EXPECT_EQ(back, obj);
    if (obj.kind() != catalog::Kind::kSynth && obj.kind() != catalog::Kind::kBag) {
      EXPECT_EQ(buf.size(), obj.marshaled_size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarshalSeed, ::testing::Range<std::uint64_t>(100, 110));

// ---------------------------------------------------------------------
// FFT identities over random sizes/signals
// ---------------------------------------------------------------------

class FftSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSweep, RadixIdentityAndParseval) {
  const std::size_t n = GetParam();
  util::Rng rng(n);
  std::vector<double> x(n);
  double energy = 0;
  for (auto& v : x) {
    v = rng.uniform(-1, 1);
    energy += v * v;
  }
  auto direct = funcs::fft(x);
  // Radix identity.
  if (n >= 2) {
    auto combined = funcs::radix_combine(funcs::fft(funcs::even(x)),
                                         funcs::fft(funcs::odd(x)));
    ASSERT_EQ(combined.size(), direct.size());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(std::abs(combined[i] - direct[i]), 0.0, 1e-8 * static_cast<double>(n));
    }
  }
  // Parseval.
  double fenergy = 0;
  for (const auto& c : direct) fenergy += std::norm(c);
  EXPECT_NEAR(fenergy / static_cast<double>(n), energy, 1e-8 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 32u, 128u, 1024u, 8192u));

// ---------------------------------------------------------------------
// Window reconstruction property
// ---------------------------------------------------------------------

class WindowSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(WindowSweep, TumblingWindowsReconstructStream) {
  const auto [count, size] = GetParam();
  std::ostringstream q;
  q << "select extract(b) from sp a, sp b"
    << " where b=sp(cwindow(extract(a), " << size << "), 'bg')"
    << " and a=sp(iota(1, " << count << "), 'bg');";
  Scsq scsq;
  auto r = scsq.run(q.str());
  // Concatenating the windows must reproduce 1..count exactly.
  std::vector<std::int64_t> flat;
  for (const auto& w : r.results) {
    for (const auto& el : w.as_bag()) flat.push_back(el.as_int());
  }
  ASSERT_EQ(flat.size(), static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) EXPECT_EQ(flat[static_cast<std::size_t>(i)], i + 1);
  // All windows but the last are exactly `size` long.
  for (std::size_t i = 0; i + 1 < r.results.size(); ++i) {
    EXPECT_EQ(r.results[i].as_bag().size(), static_cast<std::size_t>(size));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, WindowSweep,
                         ::testing::Values(std::pair{10, 3}, std::pair{12, 4},
                                           std::pair{1, 5}, std::pair{7, 7},
                                           std::pair{20, 1}, std::pair{100, 17}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.first) + "w" +
                                  std::to_string(info.param.second);
                         });

// --- Coroutine-frame pool: steady-state zero allocation ---

sim::Task<void> pool_hop_task(sim::Simulator& s, int hops) {
  for (int i = 0; i < hops; ++i) co_await s.delay(1e-6);
}

sim::Task<void> pool_parent_task(sim::Simulator& s) {
  // Spawns a child mid-flight so frames of more than one size class
  // churn through the free lists in the same cycle.
  co_await s.delay(1e-6);
  s.spawn(pool_hop_task(s, 2));
  co_await s.delay(1e-6);
}

// After a few warm-up cycles every coroutine frame comes from a free
// list: no new chunk is carved, nothing falls through to operator new.
// ASAN/LSAN runs of this binary (tools/ci_smoke.sh) double-check that
// the recycling is clean, not just quiet.
TEST(CoroPool, SteadyStateSpawnCyclesAllocateNothing) {
  sim::Simulator kernel;
  auto cycle = [&kernel] {
    for (int i = 0; i < 64; ++i) kernel.spawn(pool_hop_task(kernel, 3));
    for (int i = 0; i < 16; ++i) kernel.spawn(pool_parent_task(kernel));
    kernel.run();
    ASSERT_EQ(kernel.live_root_tasks(), 0u);
    kernel.reset();
  };
  for (int warm = 0; warm < 4; ++warm) cycle();
  const sim::CoroPoolStats before = sim::coro_pool_stats();
  for (int hot = 0; hot < 32; ++hot) cycle();
  const sim::CoroPoolStats after = sim::coro_pool_stats();
  EXPECT_EQ(after.chunk_allocs, before.chunk_allocs);
  EXPECT_EQ(after.oversize_allocs, before.oversize_allocs);
  EXPECT_GT(after.bucket_reused, before.bucket_reused);
}

}  // namespace
}  // namespace scsq
