#include <gtest/gtest.h>

#include "resolve/binder.hpp"
#include "scsql/parser.hpp"

namespace scsq::resolve {
namespace {

using scsql::parse_statement;

const scsql::Select& select_of(const scsql::Statement& st) {
  EXPECT_TRUE(st.query);
  EXPECT_EQ(st.query->kind, scsql::ExprKind::kSelect);
  return *st.query->select;
}

TEST(FreeVars, SimpleVar) {
  auto e = scsql::parse_expression("extract(a)");
  auto fv = free_vars(e);
  EXPECT_EQ(fv, (std::set<std::string>{"a"}));
}

TEST(FreeVars, CallNamesAreNotVars) {
  auto e = scsql::parse_expression("count(merge({a, b}))");
  EXPECT_EQ(free_vars(e), (std::set<std::string>{"a", "b"}));
}

TEST(FreeVars, LiteralsHaveNone) {
  EXPECT_TRUE(free_vars(scsql::parse_expression("gen_array(3000000, 100)")).empty());
}

TEST(FreeVars, NestedSelectDeclsShadow) {
  // i is declared by the inner select; n is free.
  auto e = scsql::parse_expression(
      "spv((select gen_array(i, 100) from integer i where i in iota(1, n)), 'be', 1)");
  EXPECT_EQ(free_vars(e), (std::set<std::string>{"n"}));
}

TEST(Binder, OrdersBindingsByDependency) {
  auto st = parse_statement(
      "select extract(c) from sp a, sp b, sp c "
      "where c=sp(extract(b)) and b=sp(extract(a)) and a=sp(gen_array(1,1));");
  auto bound = bind(select_of(st));
  ASSERT_EQ(bound.bindings.size(), 3u);
  EXPECT_EQ(bound.bindings[0]->lhs->name, "a");
  EXPECT_EQ(bound.bindings[1]->lhs->name, "b");
  EXPECT_EQ(bound.bindings[2]->lhs->name, "c");
}

TEST(Binder, PaperQuery1Order) {
  auto st = parse_statement(R"(
    select extract(c) from bag of sp a, sp b, sp c, integer n
    where c=sp(extract(b), 'bg')
    and   b=sp(count(merge(a)), 'bg')
    and   a=spv((select gen_array(3000000,100)
                 from integer i where i in iota(1,n)), 'be', 1)
    and n=4;)");
  auto bound = bind(select_of(st));
  ASSERT_EQ(bound.bindings.size(), 4u);
  // n and a have no unmet deps (the inner select binds its own i); both
  // must come before b, which must come before c.
  std::vector<std::string> order;
  for (auto* b : bound.bindings) order.push_back(b->lhs->name);
  auto pos = [&](const std::string& v) {
    return std::find(order.begin(), order.end(), v) - order.begin();
  };
  EXPECT_LT(pos("n"), pos("a"));  // a's inner select references n
  EXPECT_LT(pos("a"), pos("b"));
  EXPECT_LT(pos("b"), pos("c"));
}

TEST(Binder, EnumerationClassified) {
  auto st = parse_statement(
      "select streamof(count(extract(p))) from sp p where p in a;");
  auto bound = bind(select_of(st), /*pre_bound=*/{"a"});
  EXPECT_TRUE(bound.bindings.empty());
  ASSERT_EQ(bound.enumerations.size(), 1u);
  EXPECT_EQ(bound.enumerations[0]->lhs->name, "p");
  EXPECT_TRUE(bound.filters.empty());
}

TEST(Binder, FiltersKeptSeparate) {
  auto st = parse_statement(
      "select i from integer i, integer n where i in iota(1,10) and n=3 and i < n;");
  auto bound = bind(select_of(st));
  EXPECT_EQ(bound.bindings.size(), 1u);
  EXPECT_EQ(bound.enumerations.size(), 1u);
  ASSERT_EQ(bound.filters.size(), 1u);
  EXPECT_EQ(bound.filters[0]->op, scsql::BinOp::kLt);
}

TEST(Binder, BindingWithVarOnRight) {
  auto st = parse_statement("select n from integer n where 4 = n;");
  auto bound = bind(select_of(st));
  ASSERT_EQ(bound.bindings.size(), 1u);
  EXPECT_TRUE(bound.filters.empty());
}

TEST(Binder, UnboundVariableThrows) {
  auto st = parse_statement("select extract(a) from sp a, sp b where a=sp(extract(b));");
  EXPECT_THROW(bind(select_of(st)), scsql::Error);  // b never bound
}

TEST(Binder, DoubleDeclarationThrows) {
  auto st = parse_statement("select 1 from integer i, integer i where i=1;");
  EXPECT_THROW(bind(select_of(st)), scsql::Error);
}

TEST(Binder, CyclicDependencyThrows) {
  auto st = parse_statement(
      "select 1 from sp a, sp b where a=sp(extract(b)) and b=sp(extract(a));");
  EXPECT_THROW(bind(select_of(st)), scsql::Error);
}

TEST(Binder, ShadowingPreBoundThrows) {
  auto st = parse_statement("select 1 from integer n where n=1;");
  EXPECT_THROW(bind(select_of(st), {"n"}), scsql::Error);
}

TEST(Binder, InOnNonVariableThrows) {
  auto st = parse_statement("select 1 from integer i where iota(1,2) in i and i=1;");
  EXPECT_THROW(bind(select_of(st)), scsql::Error);
}

TEST(Binder, EqualityOnEnumeratedVarIsAFilter) {
  // `i = 1` cannot bind an enumerated variable; it filters rows instead
  // (regardless of predicate order).
  for (const char* q : {"select i from integer i where i=1 and i in iota(1,3);",
                        "select i from integer i where i in iota(1,3) and i=1;"}) {
    auto st = parse_statement(q);
    auto bound = bind(select_of(st));
    EXPECT_TRUE(bound.bindings.empty()) << q;
    EXPECT_EQ(bound.enumerations.size(), 1u) << q;
    EXPECT_EQ(bound.filters.size(), 1u) << q;
  }
}

TEST(Binder, DoubleEnumerationThrows) {
  auto st = parse_statement(
      "select i from integer i where i in iota(1,3) and i in iota(4,6);");
  EXPECT_THROW(bind(select_of(st)), scsql::Error);
}

TEST(Binder, EnumerationDependsOnBinding) {
  auto st = parse_statement(
      "select i from integer i, integer n where i in iota(1,n) and n=5;");
  auto bound = bind(select_of(st));
  EXPECT_EQ(bound.bindings.size(), 1u);
  EXPECT_EQ(bound.enumerations.size(), 1u);
}

}  // namespace
}  // namespace scsq::resolve
