// Sim-time telemetry sampler regression suite.
//
// The load-bearing invariant of the sampler PR: sampling is purely
// observational. Every figure table, every elapsed_s, every result is
// byte-identical with SCSQ_SAMPLE_INTERVAL on or off, at every
// SCSQ_SIM_LPS setting — because ticks are zero-duration read-only
// callbacks and the parked tick is cancelled (not dispatched) when the
// statement drains. These tests pin that invariant at the engine level
// and unit-test the windowing math: counter deltas across registry
// re-use, mid-run series baselining, LogHistogram per-window quantiles
// for empty and single-sample windows, and the JSONL export shape.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/scsq.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "sim/simulator.hpp"
#include "util/json.hpp"

namespace scsq::obs {
namespace {

// ---------------------------------------------------------------------
// Windowing math on a bare Simulator + Registry
// ---------------------------------------------------------------------

TEST(Sampler, DisabledIsNoOp) {
  sim::Simulator sim;
  Registry registry;
  Sampler sampler(sim, registry, {0.0});
  EXPECT_FALSE(sampler.enabled());
  sampler.begin(0.0, nullptr);
  EXPECT_FALSE(sampler.active());
  sim.call_at(1.0, [] {});
  sim.run();
  sampler.finish();
  EXPECT_TRUE(sampler.windows().empty());
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);  // no sampler events were scheduled
}

TEST(Sampler, CounterDeltasAndRatesPerWindow) {
  sim::Simulator sim;
  Registry registry;
  auto& bytes = registry.counter("link.bytes", {{"src", "a"}});
  Sampler sampler(sim, registry, {1.0});
  sampler.begin(0.0, nullptr);
  sim.call_at(0.5, [&] { bytes.inc(10); });
  sim.call_at(1.5, [&] { bytes.inc(20); });
  sim.call_at(2.5, [&] {
    bytes.inc(5);
    sampler.finish();  // what the engine does at the last event
  });
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);  // the parked tick never advanced now()

  const auto& w = sampler.windows();
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0].t_start, 0.0);
  EXPECT_DOUBLE_EQ(w[0].t_end, 1.0);
  ASSERT_EQ(w[0].counters.size(), 1u);
  EXPECT_EQ(w[0].counters[0].key, "link.bytes{src=a}");
  EXPECT_EQ(w[0].counters[0].delta, 10u);
  EXPECT_DOUBLE_EQ(w[0].counters[0].rate, 10.0);
  // Window continuity: each window starts where the previous ended.
  EXPECT_DOUBLE_EQ(w[1].t_start, w[0].t_end);
  EXPECT_EQ(w[1].counter_delta_sum("link.bytes"), 20u);
  // Final partial window [2.0, 2.5): rate uses the real window length.
  EXPECT_DOUBLE_EQ(w[2].t_start, 2.0);
  EXPECT_DOUBLE_EQ(w[2].t_end, 2.5);
  EXPECT_EQ(w[2].counter_delta_sum("link.bytes"), 5u);
  EXPECT_DOUBLE_EQ(w[2].counter_rate_sum("link.bytes"), 10.0);
}

TEST(Sampler, DeltasSurviveRegistryReuseAcrossRuns) {
  // A second sampling run over the same (still-hot) registry must window
  // increments relative to the counter's value at begin(), not to zero —
  // the engine re-uses one registry across statements.
  sim::Simulator sim;
  Registry registry;
  auto& c = registry.counter("reqs");
  c.inc(1000);  // pre-existing total from "a previous statement"
  Sampler sampler(sim, registry, {1.0});

  sampler.begin(sim.now(), nullptr);
  sim.call_at(0.25, [&] {
    c.inc(7);
    sampler.finish();
  });
  sim.run();
  ASSERT_EQ(sampler.windows().size(), 1u);
  EXPECT_EQ(sampler.windows()[0].counter_delta_sum("reqs"), 7u);

  // Run two: baseline re-snaps at the new begin().
  c.inc(500);
  sampler.begin(sim.now(), nullptr);
  sim.call_at(sim.now() + 0.5, [&] {
    c.inc(3);
    sampler.finish();
  });
  sim.run();
  ASSERT_EQ(sampler.windows().size(), 1u);  // begin() cleared old windows
  EXPECT_EQ(sampler.windows()[0].counter_delta_sum("reqs"), 3u);
}

TEST(Sampler, MidRunSeriesBaselinesAtZero) {
  // Registry entries are append-only, so a series registered after
  // begin() baselines at zero and its full total is the first delta.
  sim::Simulator sim;
  Registry registry;
  Sampler sampler(sim, registry, {1.0});
  sampler.begin(0.0, nullptr);
  sim.call_at(0.5, [&] { registry.counter("late.series").inc(42); });
  sim.call_at(0.75, [&] { sampler.finish(); });
  sim.run();
  ASSERT_EQ(sampler.windows().size(), 1u);
  EXPECT_EQ(sampler.windows()[0].counter_delta_sum("late.series"), 42u);
}

TEST(Sampler, ZeroDeltaCountersOmittedGaugesAlwaysPresent) {
  sim::Simulator sim;
  Registry registry;
  registry.counter("idle").inc(99);  // never moves during the run
  registry.gauge("depth").set(4.0);
  Sampler sampler(sim, registry, {1.0});
  sampler.begin(0.0, nullptr);
  sim.call_at(0.5, [&] {
    registry.counter("busy").inc(1);
    registry.gauge("depth").set(7.0);
  });
  sim.call_at(1.5, [&] { sampler.finish(); });
  sim.run();
  const auto& w = sampler.windows();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].counter_delta_sum("idle"), 0u);
  EXPECT_EQ(w[0].counter_delta_sum("busy"), 1u);
  ASSERT_EQ(w[0].gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(w[0].gauges[0].value, 7.0);  // sampled at the boundary
}

TEST(Sampler, PublisherRunsBeforeEverySnapshot) {
  sim::Simulator sim;
  Registry registry;
  int published = 0;
  Sampler sampler(sim, registry, {1.0});
  sampler.add_publisher([&] {
    ++published;
    registry.gauge("pull.model").set(static_cast<double>(published));
  });
  sampler.begin(0.0, nullptr);
  sim.call_at(2.5, [&] { sampler.finish(); });
  sim.run();
  // Publisher ran at begin() plus once per snapshot (2 full + 1 partial).
  EXPECT_EQ(published, 4);
  ASSERT_EQ(sampler.windows().size(), 3u);
  EXPECT_DOUBLE_EQ(sampler.windows()[2].gauges[0].value, 4.0);
}

// ---------------------------------------------------------------------
// LogHistogram windows
// ---------------------------------------------------------------------

TEST(LogHistogram, DeltaSinceEmptyWindow) {
  LogHistogram h;
  h.observe(1e-3);
  h.observe(2e-3);
  const LogHistogram baseline = h;  // snapshot, then nothing new
  const LogHistogram window = h.delta_since(baseline);
  EXPECT_EQ(window.count(), 0u);
  EXPECT_DOUBLE_EQ(window.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(window.mean(), 0.0);
}

TEST(LogHistogram, DeltaSinceSingleSampleWindow) {
  LogHistogram h;
  h.observe(5e-4);
  const LogHistogram baseline = h;
  h.observe(2e-3);  // the only observation inside the window
  const LogHistogram window = h.delta_since(baseline);
  EXPECT_EQ(window.count(), 1u);
  // One sample: every quantile is that sample, within one bucket ratio.
  EXPECT_NEAR(window.p50(), 2e-3, 2e-3 * 0.4);
  EXPECT_NEAR(window.p99(), 2e-3, 2e-3 * 0.4);
  EXPECT_GT(window.mean(), 0.0);
}

TEST(Sampler, LogHistogramWindowQuantiles) {
  sim::Simulator sim;
  Registry registry;
  LogHistogram lat;
  lat.observe(1.0);  // pre-registration observation: excluded by baseline
  Sampler sampler(sim, registry, {1.0});
  sampler.begin(0.0, nullptr);
  sampler.add_log_histogram("link.lat", &lat);
  sim.call_at(0.5, [&] {
    for (int i = 0; i < 100; ++i) lat.observe(1e-3);
  });
  sim.call_at(1.5, [&] { sampler.finish(); });  // second window: no samples
  sim.run();
  const auto& w = sampler.windows();
  ASSERT_EQ(w.size(), 2u);
  ASSERT_EQ(w[0].histograms.size(), 1u);
  EXPECT_EQ(w[0].histograms[0].key, "link.lat");
  EXPECT_EQ(w[0].histograms[0].count, 100u);  // the 1.0 baseline is not counted
  EXPECT_NEAR(w[0].histograms[0].p50, 1e-3, 1e-3 * 0.4);
  // Empty window: the entry stays (the series exists, the link was just
  // idle this window) with count 0 — the JSONL export renders its
  // quantiles as nulls.
  ASSERT_EQ(w[1].histograms.size(), 1u);
  EXPECT_EQ(w[1].histograms[0].key, "link.lat");
  EXPECT_EQ(w[1].histograms[0].count, 0u);
}

TEST(Sampler, EmptyHistogramWindowExportsNullQuantiles) {
  sim::Simulator sim;
  Registry registry;
  LogHistogram lat;
  Sampler sampler(sim, registry, {1.0});
  sampler.begin(0.0, nullptr);
  sampler.add_log_histogram("link.lat", &lat);
  sim.call_at(0.5, [&] { lat.observe(1e-3); });
  sim.call_at(1.5, [&] { sampler.finish(); });  // second window: no samples
  sim.run();
  std::ostringstream os;
  sampler.write_jsonl(os);
  std::istringstream lines(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  {
    const auto doc = util::json::parse(line);
    const auto* hist = doc.find("histograms")->find("link.lat");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->find("count")->as_number(), 1.0);
    EXPECT_TRUE(hist->find("p50")->is_number());
  }
  ASSERT_TRUE(std::getline(lines, line));
  {
    // count == 0 => explicit nulls, distinguishable from a real 0.0
    // latency; the line still parses as strict JSON.
    const auto doc = util::json::parse(line);
    const auto* hist = doc.find("histograms")->find("link.lat");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->find("count")->as_number(), 0.0);
    for (const char* q : {"mean", "p50", "p95", "p99"}) {
      const auto* v = hist->find(q);
      ASSERT_NE(v, nullptr) << q;
      EXPECT_TRUE(v->is_null()) << q;
    }
  }
}

// ---------------------------------------------------------------------
// JSONL export
// ---------------------------------------------------------------------

TEST(Sampler, JsonlParsesAndMatchesWindows) {
  sim::Simulator sim;
  Registry registry;
  Sampler sampler(sim, registry, {1.0});
  sampler.begin(0.0, nullptr);
  sim.call_at(0.5, [&] { registry.counter("a.b").inc(6); });
  sim.call_at(1.5, [&] {
    registry.gauge("g", {{"quote", "x\"y"}}).set(2.5);
    sampler.finish();
  });
  sim.run();
  std::ostringstream os;
  sampler.write_jsonl(os);
  std::istringstream lines(os.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ASSERT_EQ(line.rfind("{\"window\"", 0), 0u) << line;  // splice anchor
    const auto doc = util::json::parse(line);
    ASSERT_TRUE(doc.is_object());
    EXPECT_EQ(doc.find("window")->as_number(), static_cast<double>(n));
    EXPECT_LT(doc.find("t_start")->as_number(), doc.find("t_end")->as_number());
    ++n;
  }
  EXPECT_EQ(n, sampler.windows().size());
  ASSERT_EQ(n, 2u);
}

// ---------------------------------------------------------------------
// Engine-level byte identity: sampler on/off x SCSQ_SIM_LPS
// ---------------------------------------------------------------------

exec::RunReport run_sampled(const std::string& script, double interval, int lps) {
  ScsqConfig config;
  config.exec.sample_interval_s = interval;  // >= 0 skips the env resolve
  config.exec.sim_lps = lps;
  Scsq scsq(config);
  return scsq.run(script);
}

TEST(SamplerInvariance, TablesIdenticalOnOffAcrossLps) {
  const std::string script =
      "select extract(b) from sp a, sp b"
      " where b=sp(streamof(count(extract(a))),'bg',0)"
      " and a=sp(gen_array(100000,3),'bg',1);";
  const auto base = run_sampled(script, 0.0, 1);
  for (const int lps : {1, 4}) {
    for (const double interval : {0.0, 1e-3}) {
      if (interval == 0.0 && lps == 1) continue;  // that is `base`
      SCOPED_TRACE("lps=" + std::to_string(lps) +
                   " interval=" + std::to_string(interval));
      const auto run = run_sampled(script, interval, lps);
      ASSERT_EQ(run.results.size(), base.results.size());
      EXPECT_EQ(run.elapsed_s, base.elapsed_s);  // bitwise, not approximate
      EXPECT_EQ(run.setup_s, base.setup_s);
      EXPECT_EQ(run.stream_bytes, base.stream_bytes);
    }
  }
}

TEST(SamplerInvariance, EngineProducesWindowsAndLinkQuantiles) {
  const std::string script =
      "select extract(b) from sp a, sp b"
      " where b=sp(streamof(count(extract(a))),'bg',0)"
      " and a=sp(gen_array(100000,3),'bg',1);";
  ScsqConfig config;
  config.exec.sample_interval_s = 1e-3;
  Scsq scsq(config);
  const auto report = scsq.run(script);
  const auto& sampler = scsq.engine().sampler();
  ASSERT_FALSE(sampler.windows().empty());
  // The stream moved bytes, so some window saw transport counters...
  double total_rate = 0.0;
  bool saw_latency_quantiles = false;
  for (const auto& w : sampler.windows()) {
    EXPECT_LT(w.t_start, w.t_end);
    total_rate += w.counter_rate_sum("transport.link.bytes");
    for (const auto& h : w.histograms) {
      if (h.key.find("transport.link.latency") != std::string::npos && h.count > 0) {
        saw_latency_quantiles = true;
        EXPECT_GT(h.p99, 0.0);
        EXPECT_GE(h.p99, h.p50);
      }
    }
  }
  EXPECT_GT(total_rate, 0.0);
  EXPECT_TRUE(saw_latency_quantiles);
  // ...and the last window ends exactly at the query's last event: the
  // final partial window is taken at finish() inside the run.
  EXPECT_LE(sampler.windows().back().t_end, report.elapsed_s + report.setup_s + 1e-9);
}

TEST(SamplerInvariance, BadSampleIntervalEnvRejected) {
  // A typo'd SCSQ_SAMPLE_INTERVAL must fail loudly at engine
  // construction, not silently disable sampling: zero, negative and
  // non-numeric values are all rejected.
  for (const char* bad : {"abc", "0", "-1", "0.0", "1x", "1e"}) {
    SCOPED_TRACE(bad);
    ::setenv("SCSQ_SAMPLE_INTERVAL", bad, 1);
    ScsqConfig config;  // sample_interval_s = -1: resolve from the env
    EXPECT_THROW(Scsq scsq(config), scsql::Error);
  }
  ::setenv("SCSQ_SAMPLE_INTERVAL", "0.5", 1);
  {
    ScsqConfig config;
    Scsq scsq(config);
    EXPECT_TRUE(scsq.engine().sampler().enabled());
    EXPECT_DOUBLE_EQ(scsq.engine().options().sample_interval_s, 0.5);
  }
  ::unsetenv("SCSQ_SAMPLE_INTERVAL");
}

TEST(SamplerInvariance, SetSampleIntervalRearmsBetweenStatements) {
  const std::string script = "select 1 + 2;";
  ScsqConfig config;
  config.exec.sample_interval_s = 0.0;
  Scsq scsq(config);
  EXPECT_FALSE(scsq.engine().sampler().enabled());
  scsq.engine().set_sample_interval(0.5);
  EXPECT_TRUE(scsq.engine().sampler().enabled());
  EXPECT_DOUBLE_EQ(scsq.engine().options().sample_interval_s, 0.5);
  scsq.run(script);  // must not crash with the sampler re-created
  scsq.engine().set_sample_interval(0.0);
  EXPECT_FALSE(scsq.engine().sampler().enabled());
}

}  // namespace
}  // namespace scsq::obs
