#include <gtest/gtest.h>

#include "scsql/lexer.hpp"
#include "scsql/parser.hpp"

namespace scsq::scsql {
namespace {

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

TEST(Lexer, KeywordsCaseInsensitive) {
  Lexer lex("SELECT Select select FROM Where AND in");
  auto toks = lex.lex_all();
  ASSERT_EQ(toks.size(), 8u);  // 7 + end
  EXPECT_EQ(toks[0].kind, Tok::kSelect);
  EXPECT_EQ(toks[1].kind, Tok::kSelect);
  EXPECT_EQ(toks[2].kind, Tok::kSelect);
  EXPECT_EQ(toks[3].kind, Tok::kFrom);
  EXPECT_EQ(toks[4].kind, Tok::kWhere);
  EXPECT_EQ(toks[5].kind, Tok::kAnd);
  EXPECT_EQ(toks[6].kind, Tok::kIn);
}

TEST(Lexer, IdentifiersWithUnderscores) {
  auto toks = Lexer("gen_array _x a1").lex_all();
  EXPECT_EQ(toks[0].text, "gen_array");
  EXPECT_EQ(toks[1].text, "_x");
  EXPECT_EQ(toks[2].text, "a1");
}

TEST(Lexer, NumbersIntAndReal) {
  auto toks = Lexer("42 3.5 1e3 2.5e-2 7").lex_all();
  EXPECT_EQ(toks[0].kind, Tok::kInt);
  EXPECT_EQ(toks[0].int_val, 42);
  EXPECT_EQ(toks[1].kind, Tok::kReal);
  EXPECT_DOUBLE_EQ(toks[1].real_val, 3.5);
  EXPECT_EQ(toks[2].kind, Tok::kReal);
  EXPECT_DOUBLE_EQ(toks[2].real_val, 1000.0);
  EXPECT_EQ(toks[3].kind, Tok::kReal);
  EXPECT_DOUBLE_EQ(toks[3].real_val, 0.025);
  EXPECT_EQ(toks[4].kind, Tok::kInt);
}

TEST(Lexer, BothQuoteStyles) {
  auto toks = Lexer("'bg' \"pattern\"").lex_all();
  EXPECT_EQ(toks[0].kind, Tok::kString);
  EXPECT_EQ(toks[0].text, "bg");
  EXPECT_EQ(toks[1].kind, Tok::kString);
  EXPECT_EQ(toks[1].text, "pattern");
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(Lexer("'oops").lex_all(), Error);
}

TEST(Lexer, CommentsSkipped) {
  auto toks = Lexer("select -- a comment\n 1").lex_all();
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].kind, Tok::kSelect);
  EXPECT_EQ(toks[1].kind, Tok::kInt);
}

TEST(Lexer, ArrowAndMinus) {
  auto toks = Lexer("-> - a-b").lex_all();
  EXPECT_EQ(toks[0].kind, Tok::kArrow);
  EXPECT_EQ(toks[1].kind, Tok::kMinus);
  EXPECT_EQ(toks[2].kind, Tok::kIdent);
  EXPECT_EQ(toks[3].kind, Tok::kMinus);
  EXPECT_EQ(toks[4].kind, Tok::kIdent);
}

TEST(Lexer, PositionsTracked) {
  auto toks = Lexer("select\n  foo").lex_all();
  EXPECT_EQ(toks[0].pos.line, 1);
  EXPECT_EQ(toks[0].pos.column, 1);
  EXPECT_EQ(toks[1].pos.line, 2);
  EXPECT_EQ(toks[1].pos.column, 3);
}

TEST(Lexer, BadCharacterThrows) {
  EXPECT_THROW(Lexer("select @").lex_all(), Error);
}

// ---------------------------------------------------------------------
// Parser: expressions
// ---------------------------------------------------------------------

TEST(Parser, LiteralKinds) {
  EXPECT_EQ(parse_expression("42")->literal.as_int(), 42);
  EXPECT_DOUBLE_EQ(parse_expression("2.5")->literal.as_real(), 2.5);
  EXPECT_EQ(parse_expression("'bg'")->literal.as_str(), "bg");
}

TEST(Parser, CallWithArgs) {
  auto e = parse_expression("gen_array(3000000, 100)");
  ASSERT_EQ(e->kind, ExprKind::kCall);
  EXPECT_EQ(e->name, "gen_array");
  ASSERT_EQ(e->args.size(), 2u);
  EXPECT_EQ(e->args[0]->literal.as_int(), 3000000);
}

TEST(Parser, NestedCalls) {
  auto e = parse_expression("streamof(count(extract(a)))");
  ASSERT_EQ(e->kind, ExprKind::kCall);
  EXPECT_EQ(e->name, "streamof");
  EXPECT_EQ(e->args[0]->name, "count");
  EXPECT_EQ(e->args[0]->args[0]->name, "extract");
  EXPECT_EQ(e->args[0]->args[0]->args[0]->kind, ExprKind::kVar);
  EXPECT_EQ(e->args[0]->args[0]->args[0]->name, "a");
}

TEST(Parser, BagConstructor) {
  auto e = parse_expression("merge({a, b})");
  ASSERT_EQ(e->kind, ExprKind::kCall);
  ASSERT_EQ(e->args.size(), 1u);
  EXPECT_EQ(e->args[0]->kind, ExprKind::kBagCtor);
  EXPECT_EQ(e->args[0]->args.size(), 2u);
}

TEST(Parser, ArithmeticPrecedence) {
  auto e = parse_expression("1 + 2 * 3");
  ASSERT_EQ(e->kind, ExprKind::kBinary);
  EXPECT_EQ(e->op, BinOp::kAdd);
  EXPECT_EQ(e->args[1]->op, BinOp::kMul);
}

TEST(Parser, ComparisonLowestPrecedence) {
  auto e = parse_expression("1 + 2 < 3 * 4");
  ASSERT_EQ(e->kind, ExprKind::kBinary);
  EXPECT_EQ(e->op, BinOp::kLt);
}

TEST(Parser, UnaryMinus) {
  auto e = parse_expression("-x");
  EXPECT_EQ(e->kind, ExprKind::kNeg);
  EXPECT_EQ(e->args[0]->name, "x");
}

TEST(Parser, ParenGrouping) {
  auto e = parse_expression("(1 + 2) * 3");
  EXPECT_EQ(e->op, BinOp::kMul);
  EXPECT_EQ(e->args[0]->op, BinOp::kAdd);
}

TEST(Parser, ErrorsCarryPosition) {
  try {
    parse_expression("count(");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_GT(e.pos().column, 1);
  }
}

TEST(Parser, RejectsDanglingInput) {
  EXPECT_THROW(parse_expression("1 2"), Error);
  EXPECT_THROW(parse_statement("select 1; select 2;"), Error);
}

// ---------------------------------------------------------------------
// Parser: selects and the paper's listings
// ---------------------------------------------------------------------

TEST(Parser, SimpleSelect) {
  auto st = parse_statement("select extract(b) from sp a, sp b where b = sp(a) and a = 1;");
  ASSERT_TRUE(st.query);
  ASSERT_EQ(st.query->kind, ExprKind::kSelect);
  const auto& sel = *st.query->select;
  ASSERT_EQ(sel.exprs.size(), 1u);
  ASSERT_EQ(sel.decls.size(), 2u);
  EXPECT_EQ(sel.decls[0].type.name, TypeName::kSp);
  EXPECT_FALSE(sel.decls[0].type.is_bag);
  ASSERT_EQ(sel.predicates.size(), 2u);
  EXPECT_EQ(sel.predicates[0].kind, PredKind::kCompare);
  EXPECT_EQ(sel.predicates[0].op, BinOp::kEq);
}

TEST(Parser, BagOfSpDeclaration) {
  auto st = parse_statement("select 1 from bag of sp a, integer n;");
  const auto& sel = *st.query->select;
  ASSERT_EQ(sel.decls.size(), 2u);
  EXPECT_TRUE(sel.decls[0].type.is_bag);
  EXPECT_EQ(sel.decls[0].type.name, TypeName::kSp);
  EXPECT_EQ(sel.decls[1].type.name, TypeName::kInteger);
}

TEST(Parser, InPredicate) {
  auto st = parse_statement("select i from integer i where i in iota(1, 1000);");
  const auto& sel = *st.query->select;
  ASSERT_EQ(sel.predicates.size(), 1u);
  EXPECT_EQ(sel.predicates[0].kind, PredKind::kIn);
  EXPECT_EQ(sel.predicates[0].lhs->name, "i");
  EXPECT_EQ(sel.predicates[0].rhs->name, "iota");
}

// The paper's intra-BG point-to-point query (§3.1), verbatim layout.
TEST(Parser, PaperPointToPointQuery) {
  auto st = parse_statement(R"(
    select extract(b)
    from sp a, sp b
    where b=sp(streamof(count(extract(a))),
               'bg',0) and
          a=sp(gen_array(3000000,100),'bg',1);
  )");
  const auto& sel = *st.query->select;
  ASSERT_EQ(sel.decls.size(), 2u);
  ASSERT_EQ(sel.predicates.size(), 2u);
  const auto& b_eq = sel.predicates[0];
  EXPECT_EQ(b_eq.lhs->name, "b");
  ASSERT_EQ(b_eq.rhs->name, "sp");
  ASSERT_EQ(b_eq.rhs->args.size(), 3u);
  EXPECT_EQ(b_eq.rhs->args[1]->literal.as_str(), "bg");
  EXPECT_EQ(b_eq.rhs->args[2]->literal.as_int(), 0);
}

// The paper's stream-merging query (§3.1) with x=1, y=2.
TEST(Parser, PaperMergeQuery) {
  auto st = parse_statement(R"(
    Select extract(c)
    from sp a, sp b, sp c
    where c=sp(count(merge({a,b})), 'bg',0)
    and a=sp(gen_array(3000000,100),'bg',1)
    and b=sp(gen_array(3000000,100),'bg',2);
  )");
  const auto& sel = *st.query->select;
  ASSERT_EQ(sel.decls.size(), 3u);
  ASSERT_EQ(sel.predicates.size(), 3u);
  EXPECT_EQ(sel.predicates[0].rhs->args[0]->name, "count");
}

// The paper's Query 1 (§3.2).
TEST(Parser, PaperInboundQuery1) {
  auto st = parse_statement(R"(
    select extract(c) from
    bag of sp a, sp b, sp c,
    integer n
    where c=sp(extract(b), 'bg')
    and   b=sp(count(merge(a)), 'bg')
    and   a=spv(
       (select gen_array(3000000,100)
        from integer i where i in iota(1,n)),
                 'be', 1)
    and n=4;
  )");
  const auto& sel = *st.query->select;
  ASSERT_EQ(sel.decls.size(), 4u);
  EXPECT_TRUE(sel.decls[0].type.is_bag);
  ASSERT_EQ(sel.predicates.size(), 4u);
  const auto& a_eq = sel.predicates[2];
  EXPECT_EQ(a_eq.lhs->name, "a");
  EXPECT_EQ(a_eq.rhs->name, "spv");
  ASSERT_EQ(a_eq.rhs->args.size(), 3u);
  EXPECT_EQ(a_eq.rhs->args[0]->kind, ExprKind::kSelect);
}

// Query 5's psetrr() allocation (§3.2).
TEST(Parser, PaperInboundQuery5Allocation) {
  auto st = parse_statement(R"(
    select extract(c) from
    bag of sp a, bag of sp b, sp c,
    integer n
    where c=sp(streamof(sum(merge(b))), 'bg')
    and b=spv(
      (select streamof(count(extract(p)))
       from sp p
       where p in a),
                 'bg', psetrr())
    and a=spv(
      (select gen_array(3000000,100)
       from integer i where i in iota(1,n)),
                 'be', 1) and n=4;
  )");
  const auto& sel = *st.query->select;
  const auto& b_eq = sel.predicates[1];
  EXPECT_EQ(b_eq.rhs->name, "spv");
  EXPECT_EQ(b_eq.rhs->args[2]->name, "psetrr");
  // The inner select declares `sp p` and uses `p in a`.
  const auto& inner = *b_eq.rhs->args[0]->select;
  ASSERT_EQ(inner.decls.size(), 1u);
  EXPECT_EQ(inner.decls[0].type.name, TypeName::kSp);
  EXPECT_EQ(inner.predicates[0].kind, PredKind::kIn);
}

// The mapreduce grep query (§2.4): a bare select as spv() argument.
TEST(Parser, PaperMapReduceGrep) {
  auto st = parse_statement(R"(
    merge(spv(
        select grep("pattern", filename(i))
        from integer i
        where i in iota(1,1000)));
  )");
  ASSERT_TRUE(st.query);
  EXPECT_EQ(st.query->name, "merge");
  const auto& spv = *st.query->args[0];
  EXPECT_EQ(spv.name, "spv");
  ASSERT_EQ(spv.args.size(), 1u);
  EXPECT_EQ(spv.args[0]->kind, ExprKind::kSelect);
}

// The radix2 FFT function definition (§2.4).
TEST(Parser, PaperRadix2FunctionDef) {
  auto st = parse_statement(R"(
    create function radix2(string s)
                  ->stream
    as select radixcombine(merge({a,b}))
    from sp a, sp b, sp c
    where a=sp(fft(odd (extract(c))))
    and b=sp(fft(even(extract(c))))
    and c=sp(receiver(s));
  )");
  ASSERT_TRUE(st.function);
  EXPECT_EQ(st.function->name, "radix2");
  ASSERT_EQ(st.function->params.size(), 1u);
  EXPECT_EQ(st.function->params[0].type.name, TypeName::kString);
  EXPECT_EQ(st.function->params[0].name, "s");
  EXPECT_EQ(st.function->return_type.name, TypeName::kStream);
  ASSERT_TRUE(st.function->body);
  EXPECT_EQ(st.function->body->kind, ExprKind::kSelect);
}

TEST(Parser, ScriptWithMultipleStatements) {
  auto script = parse_script(R"(
    create function f() -> integer as select 1;
    select f();
  )");
  ASSERT_EQ(script.size(), 2u);
  EXPECT_TRUE(script[0].function);
  EXPECT_TRUE(script[1].query);
}

TEST(Parser, MissingSemicolonThrows) {
  EXPECT_THROW(parse_statement("select 1"), Error);
}

TEST(Parser, UnknownTypeThrows) {
  EXPECT_THROW(parse_statement("select 1 from blob x;"), Error);
}

TEST(Parser, PredicateWithoutOperatorThrows) {
  EXPECT_THROW(parse_statement("select 1 from integer i where i;"), Error);
}

// ---------------------------------------------------------------------
// Printer round-trip: parse(print(parse(q))) == structurally stable
// ---------------------------------------------------------------------

void expect_print_parse_stable(const std::string& query) {
  auto st1 = parse_statement(query);
  ASSERT_TRUE(st1.query);
  std::string printed = st1.query->to_string() + ";";
  auto st2 = parse_statement(printed);
  EXPECT_EQ(st2.query->to_string(), st1.query->to_string()) << printed;
}

TEST(Printer, RoundTripSimple) { expect_print_parse_stable("select 1 + 2 * 3;"); }

TEST(Printer, RoundTripPaperQueries) {
  expect_print_parse_stable(
      "select extract(b) from sp a, sp b "
      "where b=sp(streamof(count(extract(a))),'bg',0) "
      "and a=sp(gen_array(3000000,100),'bg',1);");
  expect_print_parse_stable(
      "select extract(c) from bag of sp a, sp b, sp c, integer n "
      "where c=sp(extract(b),'bg') and b=sp(count(merge(a)),'bg') "
      "and a=spv((select gen_array(3000000,100) from integer i "
      "where i in iota(1,n)),'be',1) and n=4;");
}

}  // namespace
}  // namespace scsq::scsql
