// Differential fuzz for the timed pending-event set (sim/event_queue.hpp).
//
// A deterministic random "program" of call_at / cancel_timer / spawned
// delay-chain interleavings is replayed against every combination of
//   queue mode  x  drive mode
// where queue mode is {heap, ladder} and drive mode is
//   kRun      — plain Simulator::run (the run_loop fast path),
//   kMux      — the sequenced-multiplexer protocol LpDomain::run_sequenced
//               uses: next_event_key -> front_cancelled -> advance_now ->
//               run_one (front inspection without dispatching),
//   kWindowed — run_before horizon chopping (the conservative-PLP window
//               primitive).
// Every dispatched callback logs (now(), tag) and draws its next actions
// from a shared RNG, so the slightest ordering divergence cascades into a
// completely different log. All six logs must be element-for-element
// identical — that is the ladder queue's core contract: the exact
// (time, seq) dispatch order of the binary-heap reference.
//
// Timestamps are quantized to a coarse grid so same-timestamp ties (the
// seq tie-break) occur constantly, including dt == 0 arms that take the
// same-time FIFO fast path and race the timed set inside
// next_event_key's front selection.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "util/rng.hpp"

namespace {

using scsq::sim::EventQueue;
using scsq::sim::Simulator;
using scsq::sim::Task;

struct Dispatch {
  double at;
  int tag;
  bool operator==(const Dispatch& o) const { return at == o.at && tag == o.tag; }
};

enum class Drive { kRun, kMux, kWindowed };

struct FuzzWorld {
  Simulator& sim;
  scsq::util::Rng rng;
  int budget;  // remaining arm() calls; bounds the program
  std::vector<Dispatch> log;
  std::vector<Simulator::TimerId> live;
  int next_tag = 0;

  FuzzWorld(Simulator& s, std::uint64_t seed, int budget_in)
      : sim(s), rng(seed), budget(budget_in) {}

  // Coarse grid (multiples of 1e-4, including 0) to force timestamp ties.
  double qdelay() { return static_cast<double>(rng.uniform_int(0, 40)) * 1e-4; }

  void arm() {
    if (budget <= 0) return;
    --budget;
    const int tag = next_tag++;
    live.push_back(sim.call_at(sim.now() + qdelay(), [this, tag] { fire(tag); }));
  }

  void fire(int tag) {
    log.push_back({sim.now(), tag});
    const auto action = rng.uniform_int(0, 9);
    if (action < 4) {
      arm();
      arm();
    } else if (action < 6) {
      arm();
      cancel_random();
    } else if (action < 8) {
      spawn_chain();
    } else {
      arm();
      cancel_random();
      cancel_random();
    }
  }

  // Victims are drawn from everything ever armed, so cancels hit pending,
  // already-fired, and already-cancelled timers alike — cancel_timer's
  // generation check must behave identically under both queue modes.
  void cancel_random() {
    if (live.empty()) return;
    const auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
    sim.cancel_timer(live[idx]);
    live[idx] = live.back();
    live.pop_back();
  }

  void spawn_chain();
};

Task<void> chain_task(FuzzWorld* w, int hops) {
  for (int i = 0; i < hops; ++i) {
    const double d = w->qdelay();  // drawn in dispatch order, like everything
    const int tag = w->next_tag++;
    co_await w->sim.delay(d);
    w->log.push_back({w->sim.now(), tag});
  }
  w->arm();  // chains feed back into the timer population
}

void FuzzWorld::spawn_chain() {
  if (budget <= 0) return;
  --budget;
  const int hops = static_cast<int>(rng.uniform_int(1, 4));
  sim.spawn(chain_task(this, hops));
}

// Drives `sim` to completion the way LpDomain::run_sequenced drives its
// shards: inspect the front, silently pop cancelled nodes, lockstep the
// clock, dispatch exactly one event.
void drive_multiplexed(Simulator& sim) {
  for (;;) {
    double at;
    std::uint64_t seq;
    if (!sim.next_event_key(&at, &seq)) break;
    if (sim.front_cancelled()) {
      EXPECT_FALSE(sim.run_one());  // consumed silently, clock untouched
      continue;
    }
    sim.advance_now(at);
    EXPECT_TRUE(sim.run_one());
  }
}

// Chops the run into run_before windows barely past the current front, so
// most windows dispatch a handful of events and every horizon comparison
// (strictly-below) gets exercised against ties on the grid.
void drive_windowed(Simulator& sim) {
  while (sim.next_event_time() < Simulator::kNoLimit) {
    sim.run_before(sim.next_event_time() + 2.5e-4);
  }
}

std::vector<Dispatch> run_program_on(Simulator& sim, std::uint64_t seed, Drive drive) {
  FuzzWorld w(sim, seed, /*budget=*/400);
  for (int i = 0; i < 16; ++i) w.arm();
  w.spawn_chain();
  w.spawn_chain();
  switch (drive) {
    case Drive::kRun:
      sim.run();
      break;
    case Drive::kMux:
      drive_multiplexed(sim);
      break;
    case Drive::kWindowed:
      drive_windowed(sim);
      break;
  }
  EXPECT_EQ(sim.live_root_tasks(), 0u);
  return std::move(w.log);
}

std::vector<Dispatch> run_program(EventQueue::Mode mode, std::uint64_t seed, Drive drive) {
  Simulator sim(mode);
  return run_program_on(sim, seed, drive);
}

TEST(SimQueueFuzz, HeapAndLadderDispatchIdentically) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const auto ref = run_program(EventQueue::Mode::kHeap, seed, Drive::kRun);
    ASSERT_GT(ref.size(), 100u) << "degenerate program, seed " << seed;
    for (const Drive drive : {Drive::kRun, Drive::kMux, Drive::kWindowed}) {
      const auto ladder = run_program(EventQueue::Mode::kLadder, seed, drive);
      ASSERT_EQ(ref.size(), ladder.size())
          << "seed " << seed << " drive " << static_cast<int>(drive);
      for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_TRUE(ref[i] == ladder[i])
            << "seed " << seed << " drive " << static_cast<int>(drive) << " diverged at "
            << i << ": heap (" << ref[i].at << ", " << ref[i].tag << ") vs ladder ("
            << ladder[i].at << ", " << ladder[i].tag << ")";
      }
    }
    // The heap's own mux/windowed drives must also match its run drive
    // (guards the front-inspection protocol itself, not just the ladder).
    EXPECT_EQ(ref, run_program(EventQueue::Mode::kHeap, seed, Drive::kMux));
    EXPECT_EQ(ref, run_program(EventQueue::Mode::kHeap, seed, Drive::kWindowed));
  }
}

TEST(SimQueueFuzz, ResetReplaysProgramsIdentically) {
  Simulator sim(EventQueue::Mode::kLadder);
  const auto first = run_program_on(sim, 77, Drive::kRun);
  ASSERT_GT(first.size(), 100u);
  for (int cycle = 0; cycle < 3; ++cycle) {
    sim.reset();
    EXPECT_EQ(sim.now(), 0.0);
    EXPECT_EQ(sim.queue_depth(), 0u);
    const auto replay = run_program_on(sim, 77, Drive::kRun);
    ASSERT_EQ(first.size(), replay.size()) << "cycle " << cycle;
    EXPECT_EQ(first, replay) << "cycle " << cycle;
  }
  // A different seed on the recycled storage still matches a fresh kernel.
  sim.reset();
  EXPECT_EQ(run_program_on(sim, 78, Drive::kRun),
            run_program(EventQueue::Mode::kLadder, 78, Drive::kRun));
}

// Degenerate shapes the ladder handles through dedicated paths: a flood
// of identical timestamps (rung spawning must fail cleanly and back off)
// and a geometric cascade (forces multi-rung recursion).
TEST(SimQueueFuzz, SameTimestampFloodMatchesHeap) {
  for (const auto mode : {EventQueue::Mode::kHeap, EventQueue::Mode::kLadder}) {
    Simulator sim(mode);
    std::vector<int> order;
    for (int i = 0; i < 3000; ++i) {
      sim.call_at(0.5, [&order, i] { order.push_back(i); });
    }
    sim.run();
    ASSERT_EQ(order.size(), 3000u);
    for (int i = 0; i < 3000; ++i) {
      ASSERT_EQ(order[static_cast<std::size_t>(i)], i) << "mode " << static_cast<int>(mode);
    }
  }
}

TEST(SimQueueFuzz, GeometricCascadeMatchesHeap) {
  auto run_cascade = [](EventQueue::Mode mode) {
    Simulator sim(mode);
    std::vector<Dispatch> log;
    // Spans 12 orders of magnitude: early rungs are far too coarse for
    // the tail, so refills must respread oversized buckets recursively.
    for (int i = 0; i < 2000; ++i) {
      const double at = 1e-9 * std::pow(1.0145, i);
      sim.call_at(at, [&log, &sim, i] { log.push_back({sim.now(), i}); });
    }
    sim.run();
    return log;
  };
  const auto heap = run_cascade(EventQueue::Mode::kHeap);
  const auto ladder = run_cascade(EventQueue::Mode::kLadder);
  ASSERT_EQ(heap.size(), 2000u);
  EXPECT_EQ(heap, ladder);
}

}  // namespace
