#include <gtest/gtest.h>

#include <vector>

#include "sim/channel.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace scsq::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.live_root_tasks(), 0u);
}

TEST(Simulator, DelayAdvancesTime) {
  Simulator sim;
  double seen = -1.0;
  sim.spawn([](Simulator& s, double& out) -> Task<void> {
    co_await s.delay(1.5);
    out = s.now();
  }(sim, seen));
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 1.5);
  EXPECT_DOUBLE_EQ(sim.now(), 1.5);
  EXPECT_EQ(sim.live_root_tasks(), 0u);
}

TEST(Simulator, ZeroDelayDoesNotSuspend) {
  Simulator sim;
  int steps = 0;
  sim.spawn([](Simulator& s, int& n) -> Task<void> {
    co_await s.delay(0.0);
    ++n;
    co_await s.delay(-1.0);
    ++n;
  }(sim, steps));
  sim.run();
  EXPECT_EQ(steps, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulator, EventsOrderedByTime) {
  Simulator sim;
  std::vector<int> order;
  auto proc = [](Simulator& s, std::vector<int>& ord, double t, int id) -> Task<void> {
    co_await s.delay(t);
    ord.push_back(id);
  };
  sim.spawn(proc(sim, order, 3.0, 3));
  sim.spawn(proc(sim, order, 1.0, 1));
  sim.spawn(proc(sim, order, 2.0, 2));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, FifoWithinSameTimestamp) {
  Simulator sim;
  std::vector<int> order;
  auto proc = [](std::vector<int>& ord, int id) -> Task<void> {
    ord.push_back(id);
    co_return;
  };
  for (int i = 0; i < 5; ++i) sim.spawn(proc(order, i));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, RunUntilLimitStopsEarly) {
  Simulator sim;
  bool late_ran = false;
  sim.spawn([](Simulator& s, bool& flag) -> Task<void> {
    co_await s.delay(10.0);
    flag = true;
  }(sim, late_ran));
  sim.run(5.0);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(sim.live_root_tasks(), 1u);
}

TEST(Simulator, CallAtRunsCallback) {
  Simulator sim;
  double at = -1.0;
  sim.call_at(2.0, [&] { at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(at, 2.0);
}

TEST(Simulator, NestedTaskReturnsValue) {
  Simulator sim;
  int result = 0;
  auto child = [](Simulator& s) -> Task<int> {
    co_await s.delay(1.0);
    co_return 42;
  };
  sim.spawn([](Simulator& s, auto childFn, int& out) -> Task<void> {
    out = co_await childFn(s);
  }(sim, child, result));
  sim.run();
  EXPECT_EQ(result, 42);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

TEST(Simulator, NestedTaskPropagatesException) {
  Simulator sim;
  bool caught = false;
  auto child = []() -> Task<int> {
    throw std::runtime_error("boom");
    co_return 0;  // unreachable
  };
  sim.spawn([](auto childFn, bool& flag) -> Task<void> {
    try {
      (void)co_await childFn();
    } catch (const std::runtime_error&) {
      flag = true;
    }
  }(child, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Event, WaitersWakeOnSet) {
  Simulator sim;
  Event ev(sim);
  std::vector<double> wake_times;
  auto waiter = [](Event& e, std::vector<double>& times, Simulator& s) -> Task<void> {
    co_await e.wait();
    times.push_back(s.now());
  };
  sim.spawn(waiter(ev, wake_times, sim));
  sim.spawn(waiter(ev, wake_times, sim));
  sim.spawn([](Simulator& s, Event& e) -> Task<void> {
    co_await s.delay(3.0);
    e.set();
  }(sim, ev));
  sim.run();
  ASSERT_EQ(wake_times.size(), 2u);
  EXPECT_DOUBLE_EQ(wake_times[0], 3.0);
  EXPECT_DOUBLE_EQ(wake_times[1], 3.0);
}

TEST(Event, WaitAfterSetIsImmediate) {
  Simulator sim;
  Event ev(sim);
  ev.set();
  bool ran = false;
  sim.spawn([](Event& e, bool& flag) -> Task<void> {
    co_await e.wait();
    flag = true;
  }(ev, ran));
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Channel, SendRecvInOrder) {
  Simulator sim;
  Channel<int> ch(sim, 4);
  std::vector<int> got;
  sim.spawn([](Channel<int>& c) -> Task<void> {
    for (int i = 0; i < 10; ++i) co_await c.send(i);
    c.close();
  }(ch));
  sim.spawn([](Channel<int>& c, std::vector<int>& out) -> Task<void> {
    while (auto v = co_await c.recv()) out.push_back(*v);
  }(ch, got));
  sim.run();
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[i], i);
  EXPECT_EQ(sim.live_root_tasks(), 0u);
}

TEST(Channel, BackpressureBlocksSender) {
  Simulator sim;
  Channel<int> ch(sim, 1);
  std::vector<double> send_times;
  sim.spawn([](Simulator& s, Channel<int>& c, std::vector<double>& times) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await c.send(i);
      times.push_back(s.now());
    }
    c.close();
  }(sim, ch, send_times));
  sim.spawn([](Simulator& s, Channel<int>& c) -> Task<void> {
    while (true) {
      co_await s.delay(1.0);  // slow consumer: one item per second
      auto v = co_await c.recv();
      if (!v) break;
    }
  }(sim, ch));
  sim.run();
  ASSERT_EQ(send_times.size(), 3u);
  // First send fits the buffer at t=0; each later send waits for a recv.
  EXPECT_DOUBLE_EQ(send_times[0], 0.0);
  EXPECT_DOUBLE_EQ(send_times[1], 1.0);
  EXPECT_DOUBLE_EQ(send_times[2], 2.0);
}

TEST(Channel, CloseDrainsBufferedValues) {
  Simulator sim;
  Channel<int> ch(sim, 8);
  std::vector<int> got;
  sim.spawn([](Channel<int>& c, std::vector<int>& out) -> Task<void> {
    co_await c.send(1);
    co_await c.send(2);
    c.close();
    while (auto v = co_await c.recv()) out.push_back(*v);
  }(ch, got));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(Channel, RecvOnClosedEmptyReturnsNullopt) {
  Simulator sim;
  Channel<int> ch(sim, 1);
  ch.close();
  bool got_nullopt = false;
  sim.spawn([](Channel<int>& c, bool& flag) -> Task<void> {
    auto v = co_await c.recv();
    flag = !v.has_value();
  }(ch, got_nullopt));
  sim.run();
  EXPECT_TRUE(got_nullopt);
}

TEST(Channel, TrySendRespectsCapacity) {
  Simulator sim;
  Channel<int> ch(sim, 2);
  EXPECT_TRUE(ch.try_send(1));
  EXPECT_TRUE(ch.try_send(2));
  EXPECT_FALSE(ch.try_send(3));
  EXPECT_EQ(ch.size(), 2u);
}

TEST(Channel, MultipleReceiversEachGetDistinctValues) {
  Simulator sim;
  Channel<int> ch(sim, 2);
  std::vector<int> a, b;
  auto consumer = [](Channel<int>& c, std::vector<int>& out) -> Task<void> {
    while (auto v = co_await c.recv()) out.push_back(*v);
  };
  sim.spawn(consumer(ch, a));
  sim.spawn(consumer(ch, b));
  sim.spawn([](Channel<int>& c) -> Task<void> {
    for (int i = 0; i < 6; ++i) co_await c.send(i);
    c.close();
  }(ch));
  sim.run();
  EXPECT_EQ(a.size() + b.size(), 6u);
  std::vector<int> all = a;
  all.insert(all.end(), b.begin(), b.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(Resource, ExclusiveUseSerializes) {
  Simulator sim;
  Resource res(sim, 1, "cpu");
  std::vector<double> done_times;
  auto worker = [](Simulator& s, Resource& r, std::vector<double>& times) -> Task<void> {
    co_await r.use(2.0);
    times.push_back(s.now());
  };
  sim.spawn(worker(sim, res, done_times));
  sim.spawn(worker(sim, res, done_times));
  sim.spawn(worker(sim, res, done_times));
  sim.run();
  ASSERT_EQ(done_times.size(), 3u);
  EXPECT_DOUBLE_EQ(done_times[0], 2.0);
  EXPECT_DOUBLE_EQ(done_times[1], 4.0);
  EXPECT_DOUBLE_EQ(done_times[2], 6.0);
}

TEST(Resource, CapacityTwoRunsPairsConcurrently) {
  Simulator sim;
  Resource res(sim, 2, "duo");
  std::vector<double> done_times;
  auto worker = [](Simulator& s, Resource& r, std::vector<double>& times) -> Task<void> {
    co_await r.use(2.0);
    times.push_back(s.now());
  };
  for (int i = 0; i < 4; ++i) sim.spawn(worker(sim, res, done_times));
  sim.run();
  ASSERT_EQ(done_times.size(), 4u);
  EXPECT_DOUBLE_EQ(done_times[0], 2.0);
  EXPECT_DOUBLE_EQ(done_times[1], 2.0);
  EXPECT_DOUBLE_EQ(done_times[2], 4.0);
  EXPECT_DOUBLE_EQ(done_times[3], 4.0);
}

TEST(Resource, FifoGrantOrder) {
  Simulator sim;
  Resource res(sim, 1);
  std::vector<int> grant_order;
  auto worker = [](Resource& r, std::vector<int>& order, int id) -> Task<void> {
    co_await r.acquire();
    ResourceLock lock(r);
    order.push_back(id);
    co_return;
  };
  for (int i = 0; i < 5; ++i) sim.spawn(worker(res, grant_order, i));
  sim.run();
  EXPECT_EQ(grant_order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Resource, UtilizationTracksBusyTime) {
  Simulator sim;
  Resource res(sim, 1);
  sim.spawn([](Simulator& s, Resource& r) -> Task<void> {
    co_await r.use(1.0);   // busy [0,1)
    co_await s.delay(1.0); // idle [1,2)
  }(sim, res));
  sim.run();
  EXPECT_NEAR(res.busy_seconds(), 1.0, 1e-12);
  EXPECT_NEAR(res.utilization(), 0.5, 1e-12);
}

TEST(Resource, LockReleasesOnScopeExit) {
  Simulator sim;
  Resource res(sim, 1);
  std::vector<double> times;
  sim.spawn([](Simulator& s, Resource& r, std::vector<double>& t) -> Task<void> {
    {
      co_await r.acquire();
      ResourceLock lock(r);
      co_await s.delay(1.0);
    }
    t.push_back(s.now());
  }(sim, res, times));
  sim.spawn([](Simulator& s, Resource& r, std::vector<double>& t) -> Task<void> {
    co_await r.acquire();
    ResourceLock lock(r);
    t.push_back(s.now());
    co_await s.delay(0.5);
  }(sim, res, times));
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);  // first worker done at t=1
  EXPECT_DOUBLE_EQ(times[1], 1.0);  // second acquired right after release
  EXPECT_EQ(res.in_use(), 0);
}

TEST(Simulator, ManyProcessesComplete) {
  Simulator sim;
  int done = 0;
  auto proc = [](Simulator& s, int& n, double t) -> Task<void> {
    co_await s.delay(t);
    ++n;
  };
  for (int i = 0; i < 1000; ++i) sim.spawn(proc(sim, done, 0.001 * i));
  sim.run();
  EXPECT_EQ(done, 1000);
  EXPECT_EQ(sim.live_root_tasks(), 0u);
}

TEST(Simulator, DeadlockDetectedAsLiveRoots) {
  Simulator sim;
  Channel<int> ch(sim, 1);
  sim.spawn([](Channel<int>& c) -> Task<void> {
    auto v = co_await c.recv();  // never sent, never closed
    (void)v;
  }(ch));
  sim.run();
  EXPECT_EQ(sim.live_root_tasks(), 1u);
}

// Events landing at the same timestamp through different paths — the
// timed heap and the same-time FIFO fast path — must still dispatch in
// global schedule (seq) order, exactly like the old single
// priority_queue did.
TEST(Simulator, HeapAndFifoMergeFifoWithinTimestamp) {
  Simulator sim;
  std::vector<int> order;
  // Both outer callbacks sit in the heap for t=1.0. The first one
  // schedules a same-time event (FIFO path) that was nevertheless
  // requested *after* the second heap event — so the heap event with the
  // smaller sequence number must run before the FIFO event.
  sim.call_at(1.0, [&] {
    order.push_back(1);
    sim.call_at(sim.now(), [&] { order.push_back(3); });
  });
  sim.call_at(1.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

// The classic spawn-order test, but across a time hop so the FIFO ring
// is drained, cleared, and refilled at the new timestamp.
TEST(Simulator, FifoOrderSurvivesTimeAdvance) {
  Simulator sim;
  std::vector<int> order;
  auto proc = [](Simulator& s, std::vector<int>& ord, int id) -> Task<void> {
    ord.push_back(id);
    co_await s.delay(2.0);
    ord.push_back(id + 10);
  };
  for (int i = 0; i < 4; ++i) sim.spawn(proc(sim, order, i));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 10, 11, 12, 13}));
}

TEST(WaitQueue, NotifyOneWakesInFifoOrderAcrossRefills) {
  Simulator sim;
  WaitQueue wq(sim);
  std::vector<int> order;
  auto waiter = [](WaitQueue& q, std::vector<int>& ord, int id) -> Task<void> {
    co_await q.wait();
    ord.push_back(id);
  };
  for (int i = 0; i < 3; ++i) sim.spawn(waiter(wq, order, i));
  sim.spawn([](Simulator& s, WaitQueue& q, std::vector<int>& ord,
               auto waiterFn) -> Task<void> {
    co_await s.delay(1.0);
    q.notify_one();  // wakes 0; ring head advances past a live tail
    co_await s.delay(1.0);
    // New waiters arriving while older ones are still parked must queue
    // behind them.
    s.spawn(waiterFn(q, ord, 3));
    co_await s.delay(1.0);
    q.notify_one();  // 1
    q.notify_one();  // 2
    q.notify_one();  // 3
  }(sim, wq, order, waiter));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(wq.waiting(), 0u);
}

TEST(WaitQueue, WaitingCountsOnlyLiveWaiters) {
  Simulator sim;
  WaitQueue wq(sim);
  auto waiter = [](WaitQueue& q) -> Task<void> { co_await q.wait(); };
  for (int i = 0; i < 4; ++i) sim.spawn(waiter(wq));
  sim.run();
  EXPECT_EQ(wq.waiting(), 4u);
  wq.notify_one();
  EXPECT_EQ(wq.waiting(), 3u);
  wq.notify_all();
  EXPECT_EQ(wq.waiting(), 0u);
  sim.run();
  EXPECT_EQ(sim.live_root_tasks(), 0u);
}

TEST(Channel, CloseWhileSenderBlockedReleasesSender) {
  Simulator sim;
  Channel<int> ch(sim, 1);
  bool sender_done = false;
  sim.spawn([](Channel<int>& c, bool& done) -> Task<void> {
    co_await c.send(1);  // fills the buffer
    co_await c.send(2);  // blocks: buffer full, nobody receiving
    done = true;         // woken by close(); the value is discarded
  }(ch, sender_done));
  sim.spawn([](Simulator& s, Channel<int>& c) -> Task<void> {
    co_await s.delay(1.0);
    c.close();
  }(sim, ch));
  sim.run();
  EXPECT_TRUE(sender_done);
  EXPECT_EQ(sim.live_root_tasks(), 0u);
  EXPECT_EQ(ch.size(), 1u);  // the first value stays buffered for drain
}

TEST(Simulator, PerfCountersTrackKernelActivity) {
  Simulator sim;
  Channel<int> ch(sim, 1);
  sim.spawn([](Channel<int>& c) -> Task<void> {
    for (int i = 0; i < 10; ++i) co_await c.send(i);
    c.close();
  }(ch));
  sim.spawn([](Simulator& s, Channel<int>& c) -> Task<void> {
    while (true) {
      co_await s.delay(0.001);  // slow consumer forces sender waits
      if (!co_await c.recv()) break;
    }
  }(sim, ch));
  sim.run();
  const PerfCounters& pc = sim.perf();
  EXPECT_EQ(pc.events_dispatched, sim.events_dispatched());
  EXPECT_EQ(pc.channel_sends, 10u);
  EXPECT_EQ(pc.channel_recvs, 10u);
  EXPECT_GT(pc.channel_waits, 0u);   // sender blocked on the full buffer
  EXPECT_GT(pc.wakeups, 0u);
  EXPECT_GT(pc.heap_pushes, 0u);     // the consumer's timed delays
  EXPECT_GT(pc.fifo_pushes, 0u);     // spawn + notify fast-path events
  EXPECT_GE(pc.peak_queue_depth, 2u);
  EXPECT_EQ(pc.events_dispatched, pc.heap_pushes + pc.fifo_pushes);
}

TEST(Simulator, CallAtSlabRecyclesAcrossManyCallbacks) {
  Simulator sim;
  std::uint64_t sum = 0;
  sim.spawn([](Simulator& s, std::uint64_t& total) -> Task<void> {
    for (int i = 0; i < 1000; ++i) {
      s.call_at(s.now() + 0.5, [&total, i] { total += static_cast<std::uint64_t>(i); });
      co_await s.delay(1.0);
    }
  }(sim, sum));
  sim.run();
  EXPECT_EQ(sum, 999u * 1000u / 2u);
  EXPECT_EQ(sim.perf().callbacks_run, 1000u);
}

// run_before is strict: an event AT the horizon must not run, because
// a conservative LP's neighbor may still deliver a same-timestamp
// message that has to be merged in key order first.
TEST(Simulator, RunBeforeExcludesHorizonEvents) {
  Simulator sim;
  std::vector<double> ran;
  sim.call_at(1.0, [&] { ran.push_back(1.0); });
  sim.call_at(2.0, [&] { ran.push_back(2.0); });
  sim.call_at(3.0, [&] { ran.push_back(3.0); });
  sim.run_before(2.0);
  EXPECT_EQ(ran, (std::vector<double>{1.0}));
  EXPECT_DOUBLE_EQ(sim.next_event_time(), 2.0);
  // A later window picks the horizon event up.
  sim.run_before(2.5);
  EXPECT_EQ(ran, (std::vector<double>{1.0, 2.0}));
  sim.run();
  EXPECT_EQ(ran, (std::vector<double>{1.0, 2.0, 3.0}));
}

// Contrast with run(), which is inclusive of its limit.
TEST(Simulator, RunBeforeVsRunAtSameLimit) {
  Simulator a, b;
  int ra = 0, rb = 0;
  a.call_at(5.0, [&] { ++ra; });
  b.call_at(5.0, [&] { ++rb; });
  a.run(5.0);
  b.run_before(5.0);
  EXPECT_EQ(ra, 1);
  EXPECT_EQ(rb, 0);
}

// Same-timestamp FIFO order must hold across repeated strict windows:
// events scheduled "now" during a window run in spawn order even when
// the window boundary lands exactly on their timestamp.
TEST(Simulator, RunBeforePreservesSameTimestampFifo) {
  Simulator sim;
  std::vector<int> order;
  sim.call_at(1.0, [&] {
    order.push_back(0);
    // Schedule three same-timestamp followers; they land in the FIFO
    // lane and must run in submission order within a later window.
    for (int i = 1; i <= 3; ++i) {
      sim.call_at(1.0, [&order, i] { order.push_back(i); });
    }
  });
  sim.run_before(1.0);
  EXPECT_TRUE(order.empty());  // strictly before 1.0: nothing runs
  sim.run_before(1.5);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Simulator, NextEventTimeTracksQueueState) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.next_event_time(), Simulator::kNoLimit);
  sim.call_at(4.0, [] {});
  sim.call_at(2.0, [] {});
  EXPECT_DOUBLE_EQ(sim.next_event_time(), 2.0);
  sim.run_before(3.0);
  EXPECT_DOUBLE_EQ(sim.next_event_time(), 4.0);
  sim.run();
  EXPECT_DOUBLE_EQ(sim.next_event_time(), Simulator::kNoLimit);
}

// delay_until lands the clock on an exact absolute instant: one
// aggregated charge computing the sequential fold ((t+d)+d)+... must be
// bitwise identical to k sequential delay(d) awaits.
TEST(Simulator, DelayUntilMatchesSequentialDelayFold) {
  constexpr int kSteps = 1000;
  constexpr double kStep = 1e-7;  // deliberately not exactly representable sums
  Simulator seq;
  seq.spawn([](Simulator& s) -> Task<void> {
    for (int i = 0; i < kSteps; ++i) co_await s.delay(kStep);
  }(seq));
  seq.run();

  Simulator agg;
  agg.spawn([](Simulator& s) -> Task<void> {
    double t = s.now();
    for (int i = 0; i < kSteps; ++i) t += kStep;  // the same fold, no suspension
    co_await s.delay_until(t);
  }(agg));
  agg.run();

  EXPECT_EQ(seq.now(), agg.now());  // bitwise, not just approximately
  // And the fold differs from the naive product, which is the reason
  // delay_until exists at all.
  EXPECT_NE(seq.now(), kSteps * kStep);
}

TEST(Simulator, CancelTimerSuppressesCallbackWithoutAdvancingClock) {
  Simulator sim;
  bool fired = false;
  int runs = 0;
  const Simulator::TimerId id = sim.call_at(5.0, [&] { fired = true; });
  sim.call_at(1.0, [&] { ++runs; });
  EXPECT_TRUE(sim.cancel_timer(id));
  EXPECT_FALSE(sim.cancel_timer(id));  // second cancel: already gone
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(runs, 1);
  // The parked node at t=5 was consumed silently: the clock stopped at
  // the last real event and the cancelled node was not dispatched.
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
  EXPECT_EQ(sim.events_dispatched(), 1u);
}

TEST(Simulator, CancelTimerGenerationGuardsRecycledSlot) {
  Simulator sim;
  int first = 0;
  int second = 0;
  const Simulator::TimerId stale = sim.call_at(1.0, [&] { ++first; });
  sim.run();  // fires; the slab slot is free for re-use
  EXPECT_EQ(first, 1);
  EXPECT_FALSE(sim.cancel_timer(stale));  // already fired
  const Simulator::TimerId fresh = sim.call_at(2.0, [&] { ++second; });
  // Cancelling through the stale handle must not hit the new timer,
  // even if the slab recycled the same slot.
  EXPECT_FALSE(sim.cancel_timer(stale));
  sim.run();
  EXPECT_EQ(second, 1);
  EXPECT_TRUE(fresh.slot == stale.slot ? fresh.gen != stale.gen : true);
}

TEST(Simulator, CancelledTimerNeverBlocksRunCompletion) {
  // A sampler parks a periodic timer past the end of the workload and
  // cancels it at drain; run() must return at the last real event.
  Simulator sim;
  Simulator::TimerId tick{};
  sim.call_at(1.0, [&] { tick = sim.call_at(10.0, [] { FAIL() << "tick ran"; }); });
  sim.call_at(2.0, [&] { EXPECT_TRUE(sim.cancel_timer(tick)); });
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_DOUBLE_EQ(sim.next_event_time(), Simulator::kNoLimit);
}

TEST(Simulator, DelayUntilPastIsImmediate) {
  Simulator sim;
  int steps = 0;
  sim.spawn([](Simulator& s, int& n) -> Task<void> {
    co_await s.delay(2.0);
    co_await s.delay_until(1.0);  // in the past: no suspension
    ++n;
    co_await s.delay_until(2.0);  // == now: no suspension
    ++n;
  }(sim, steps));
  sim.run();
  EXPECT_EQ(steps, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

}  // namespace
}  // namespace scsq::sim
