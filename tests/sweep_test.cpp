// Determinism tests for the parallel sweep harness: the same sweep point
// must produce bit-identical results run twice, run on a worker thread,
// or run interleaved with other points — the property the byte-identical
// bench tables rest on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/scsq.hpp"
#include "sim/channel.hpp"
#include "util/thread_pool.hpp"

namespace scsq::bench {
namespace {

// A small Fig. 6 sweep point: point-to-point streaming at 1000-byte
// buffers (the paper's optimum), two arrays to keep the test quick.
struct Fig6Point {
  std::uint64_t buffer_bytes = 1000;
  int arrays = 2;
  int send_buffers = 2;
  std::uint64_t seed = 42;
};

struct RunResult {
  double mbps = 0.0;
  std::uint64_t events = 0;
  std::uint64_t live_roots = 0;
};

RunResult run_fig6_point(const Fig6Point& p) {
  ScsqConfig cfg;
  cfg.cost = jittered(hw::CostModel::lofar(), p.seed);
  cfg.exec.buffer_bytes = p.buffer_bytes;
  cfg.exec.send_buffers = p.send_buffers;
  Scsq scsq(cfg);
  const std::uint64_t payload = kArrayBytes * static_cast<std::uint64_t>(p.arrays);
  auto report = scsq.run(p2p_query(kArrayBytes, p.arrays));
  RunResult r;
  r.mbps = static_cast<double>(payload) * 8.0 / report.elapsed_s / 1e6;
  r.events = scsq.sim().events_dispatched();
  r.live_roots = scsq.sim().live_root_tasks();
  return r;
}

TEST(SweepDeterminism, SamePointTwiceIsBitIdentical) {
  const Fig6Point point;
  const RunResult a = run_fig6_point(point);
  const RunResult b = run_fig6_point(point);
  EXPECT_GT(a.events, 0u);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.mbps, b.mbps);  // exact: same seeds, same event order
  EXPECT_EQ(a.live_roots, 0u);
  EXPECT_EQ(b.live_roots, 0u);
}

TEST(SweepDeterminism, ThreadPoolMatchesSequentialBitForBit) {
  const Fig6Point point;
  const RunResult reference = run_fig6_point(point);
  // Four copies of the same point across four worker threads: every
  // worker must reproduce the sequential result exactly.
  const std::vector<Fig6Point> points(4, point);
  auto results =
      util::run_sweep(points, [](const Fig6Point& p) { return run_fig6_point(p); }, 4);
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    EXPECT_EQ(r.events, reference.events);
    EXPECT_EQ(r.mbps, reference.mbps);
  }
}

TEST(SweepDeterminism, DistinctSeedsStayDistinctUnderThreads) {
  // Jitter must come only from the point's own seed, never from thread
  // scheduling: each seed's parallel result equals its sequential one.
  std::vector<Fig6Point> points;
  for (std::uint64_t s = 1; s <= 6; ++s) points.push_back({1000, 2, 2, s * 7919});
  auto run = [](const Fig6Point& p) { return run_fig6_point(p).mbps; };
  const auto sequential = util::run_sweep(points, run, 1);
  const auto parallel = util::run_sweep(points, run, 4);
  EXPECT_EQ(sequential, parallel);
}

TEST(SweepDeterminism, RepeatQueryStatsReproduce) {
  const auto query = p2p_query(kArrayBytes, 2);
  const std::uint64_t payload = kArrayBytes * 2;
  auto a = repeat_query_mbps(query, payload, hw::CostModel::lofar(), 1000, 2, 7);
  auto b = repeat_query_mbps(query, payload, hw::CostModel::lofar(), 1000, 2, 7);
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.stdev(), b.stdev());
}

TEST(SweepDeterminism, DeadlockReportingSurvivesWorkerThreads) {
  // live_root_tasks() must report per-simulator state even when other
  // simulators run concurrently on the pool.
  auto deadlocked = [](const int&) {
    sim::Simulator sim;
    sim::Channel<int> ch(sim, 1);
    sim.spawn([](sim::Channel<int>& c) -> sim::Task<void> {
      auto v = co_await c.recv();  // never sent, never closed
      (void)v;
    }(ch));
    sim.run();
    return sim.live_root_tasks();
  };
  const std::vector<int> points = {0, 1, 2, 3};
  auto live = util::run_sweep(points, deadlocked, 4);
  for (auto l : live) EXPECT_EQ(l, 1u);
}

TEST(HarnessKnobs, SimLpsParsesEnvStrictly) {
  unsetenv("SCSQ_SIM_LPS");
  EXPECT_EQ(sim_lps(), 1);
  setenv("SCSQ_SIM_LPS", "4", 1);
  EXPECT_EQ(sim_lps(), 4);
  setenv("SCSQ_SIM_LPS", "0", 1);  // non-positive: fall back
  EXPECT_EQ(sim_lps(), 1);
  setenv("SCSQ_SIM_LPS", "2x", 1);  // trailing junk: fall back
  EXPECT_EQ(sim_lps(), 1);
  unsetenv("SCSQ_SIM_LPS");
}

// The oversubscription guard caps LP *workers* (a performance knob) so
// sweep_threads x workers never exceeds the hardware; the LP count
// itself is semantic and untouched. Results are worker-count invariant
// (LpWorkload.InvariantAcrossLpAndWorkerCounts), so the cap is safe.
TEST(HarnessKnobs, PlpWorkersRespectsHardwareBudget) {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  // With a 1-thread sweep the only cap is the hardware itself.
  setenv("SCSQ_BENCH_THREADS", "1", 1);
  EXPECT_EQ(plp_workers(1), 1u);
  EXPECT_EQ(plp_workers(static_cast<int>(hw)), hw);
  EXPECT_EQ(plp_workers(static_cast<int>(hw) + 7), hw);
  EXPECT_GE(plp_workers(-3), 1u);  // degenerate input floors at 1
  // A sweep pool as wide as the hardware leaves one core's worth of
  // budget per point: LP workers collapse to 1 (and a single [harness]
  // warning goes to stderr, which this test tolerates but cannot
  // portably capture).
  setenv("SCSQ_BENCH_THREADS", std::to_string(hw).c_str(), 1);
  EXPECT_EQ(plp_workers(static_cast<int>(hw) + 1), std::max(1u, hw / hw));
  unsetenv("SCSQ_BENCH_THREADS");
}

}  // namespace
}  // namespace scsq::bench
