#include <gtest/gtest.h>

#include <sstream>

#include "core/scsq.hpp"
#include "sim/resource.hpp"
#include "sim/trace.hpp"
#include "util/json.hpp"

namespace scsq::sim {
namespace {

TEST(Trace, RecordsIntervalsAndInstants) {
  Trace trace;
  trace.interval("cpu", "busy", 1.0, 3.0);
  trace.interval("cpu", "busy", 5.0, 6.0);
  trace.instant("rp", "spawn", 0.5);
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_DOUBLE_EQ(trace.track_busy_seconds("cpu"), 3.0);
  EXPECT_DOUBLE_EQ(trace.track_busy_seconds("rp"), 0.0);
  EXPECT_DOUBLE_EQ(trace.track_busy_seconds("nope"), 0.0);
}

TEST(Trace, JsonFormat) {
  Trace trace;
  trace.interval("link\"x\"", "busy", 0.0, 1e-6);
  trace.instant("rp", "done", 2e-6);
  std::ostringstream os;
  trace.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1"), std::string::npos);  // 1 microsecond
  EXPECT_NE(json.find("link\\\"x\\\""), std::string::npos);  // escaped quotes
  // Balanced braces/brackets as a cheap well-formedness check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Trace, ControlCharactersAreEscaped) {
  Trace trace;
  trace.instant("tr\nack", std::string("na\tme\x01!"), 1.0);
  std::ostringstream os;
  trace.write_json(os);
  const std::string json = os.str();
  // No raw control characters may survive into the output...
  for (char c : json) EXPECT_GE(static_cast<unsigned char>(c), 0x20u) << json;
  EXPECT_NE(json.find("\\u000a"), std::string::npos);
  EXPECT_NE(json.find("\\u0009"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  // ...and the document round-trips through a strict JSON parser.
  const auto doc = util::json::parse(json);
  const auto* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool found = false;
  for (const auto& ev : events->as_array()) {
    if (ev.find("ph")->as_string() == "i") {
      EXPECT_EQ(ev.find("name")->as_string(), "na\tme\x01!");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Trace, FlowEventsFormAnSFPair) {
  Trace trace;
  trace.flow("rp1", "rp2", "frame", 1e-6, 3e-6);
  EXPECT_EQ(trace.flow_count(), 1u);
  EXPECT_EQ(trace.size(), 2u);  // start + finish share one arrow
  std::ostringstream os;
  trace.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);

  const auto doc = util::json::parse(json);
  std::vector<const util::json::Value*> pair;
  for (const auto& ev : doc.find("traceEvents")->as_array()) {
    const auto& ph = ev.find("ph")->as_string();
    if (ph == "s" || ph == "f") pair.push_back(&ev);
  }
  // The pair shares an id and spans the two tracks in order.
  ASSERT_EQ(pair.size(), 2u);
  EXPECT_DOUBLE_EQ(pair[0]->find("id")->as_number(), pair[1]->find("id")->as_number());
  EXPECT_EQ(pair[0]->find("ph")->as_string(), "s");
  EXPECT_EQ(pair[1]->find("ph")->as_string(), "f");
  EXPECT_LT(pair[0]->find("ts")->as_number(), pair[1]->find("ts")->as_number());
}

TEST(Trace, CounterEvents) {
  Trace trace;
  trace.counter("rp1", "elements_out", 2.0, 64.0);
  std::ostringstream os;
  trace.write_json(os);
  const auto doc = util::json::parse(os.str());
  bool found = false;
  for (const auto& ev : doc.find("traceEvents")->as_array()) {
    if (ev.find("ph")->as_string() != "C") continue;
    EXPECT_DOUBLE_EQ(ev.find("args")->find("value")->as_number(), 64.0);
    found = true;
  }
  EXPECT_TRUE(found);
  // Counter samples are not busy intervals.
  EXPECT_DOUBLE_EQ(trace.track_busy_seconds("rp1"), 0.0);
}

TEST(Trace, ResourceBusyEpisodes) {
  Simulator sim;
  Trace trace;
  Resource res(sim, 1, "cpu0");
  res.set_trace(&trace);
  sim.spawn([](Simulator& s, Resource& r) -> Task<void> {
    co_await r.use(2.0);
    co_await s.delay(1.0);
    co_await r.use(3.0);
  }(sim, res));
  sim.run();
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_NEAR(trace.track_busy_seconds("cpu0"), 5.0, 1e-12);
  EXPECT_NEAR(trace.track_busy_seconds("cpu0"), res.busy_seconds(), 1e-12);
}

TEST(Trace, HandOffExtendsEpisode) {
  // Back-to-back holders via FIFO hand-off form a single busy episode.
  Simulator sim;
  Trace trace;
  Resource res(sim, 1, "cpu0");
  res.set_trace(&trace);
  auto worker = [](Resource& r) -> Task<void> { co_await r.use(1.0); };
  sim.spawn(worker(res));
  sim.spawn(worker(res));
  sim.run();
  EXPECT_EQ(trace.size(), 1u);  // one merged [0, 2) episode
  EXPECT_NEAR(trace.track_busy_seconds("cpu0"), 2.0, 1e-12);
}

TEST(Trace, FullQueryProducesConsistentTrace) {
  Scsq scsq;
  Trace trace;
  scsq.machine().set_trace(&trace);
  auto r = scsq.run(
      "select extract(b) from sp a, sp b "
      "where b=sp(streamof(count(extract(a))),'bg',0) "
      "and a=sp(gen_array(300000,10),'bg',1);");
  scsq.machine().set_trace(nullptr);
  EXPECT_EQ(r.results[0].as_int(), 10);
  EXPECT_GT(trace.size(), 10u);
  // The producing node's co-processor busy time matches the resource's
  // own accounting.
  auto& coproc1 = scsq.machine().bg().torus().coproc(1);
  EXPECT_NEAR(trace.track_busy_seconds("coproc1"), coproc1.busy_seconds(), 1e-9);
  // The receiving side was busy too, and within the elapsed time.
  EXPECT_GT(trace.track_busy_seconds("coproc0"), 0.0);
  EXPECT_LE(trace.track_busy_seconds("coproc0"), r.elapsed_s);
  std::ostringstream os;
  trace.write_json(os);
  EXPECT_GT(os.str().size(), 1000u);

  // The engine wired flow arrows for the stream hand-offs (one per
  // delivered data frame) and instants/counters on the RP tracks, and
  // the whole document still parses as strict JSON.
  EXPECT_GT(trace.flow_count(), 0u);
  const auto doc = util::json::parse(os.str());
  const auto* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_flow_start = false, saw_flow_end = false, saw_counter = false;
  for (const auto& ev : events->as_array()) {
    const auto& ph = ev.find("ph")->as_string();
    saw_flow_start |= ph == "s";
    saw_flow_end |= ph == "f";
    saw_counter |= ph == "C";
  }
  EXPECT_TRUE(saw_flow_start);
  EXPECT_TRUE(saw_flow_end);
  EXPECT_TRUE(saw_counter);
}

}  // namespace
}  // namespace scsq::sim
