#include <gtest/gtest.h>

#include "hw/machine.hpp"
#include "transport/driver.hpp"
#include "transport/frame.hpp"
#include "transport/links.hpp"
#include "transport/marshal.hpp"
#include "util/rng.hpp"

namespace scsq::transport {
namespace {

using catalog::Bag;
using catalog::Object;
using catalog::SpHandle;
using catalog::SynthArray;

// ---------------------------------------------------------------------
// Marshal round-trips
// ---------------------------------------------------------------------

void expect_round_trip(const Object& obj) {
  std::vector<std::uint8_t> buf;
  marshal(obj, buf);
  std::size_t off = 0;
  Object back = unmarshal(buf, off);
  EXPECT_EQ(off, buf.size());
  EXPECT_EQ(back, obj);
}

TEST(Marshal, Null) { expect_round_trip(Object{}); }
TEST(Marshal, Int) { expect_round_trip(Object{std::int64_t{-123456789}}); }
TEST(Marshal, Real) { expect_round_trip(Object{3.14159265358979}); }
TEST(Marshal, BoolTrue) { expect_round_trip(Object{true}); }
TEST(Marshal, BoolFalse) { expect_round_trip(Object{false}); }
TEST(Marshal, Str) { expect_round_trip(Object{std::string("hello streams")}); }
TEST(Marshal, EmptyStr) { expect_round_trip(Object{std::string()}); }

TEST(Marshal, DArray) {
  expect_round_trip(Object{std::vector<double>{1.0, -2.5, 1e-9, 7e300}});
}

TEST(Marshal, CArray) {
  expect_round_trip(Object{std::vector<std::complex<double>>{{1, 2}, {-3, 4.5}}});
}

TEST(Marshal, Synth) { expect_round_trip(Object{SynthArray{3'000'000, 42}}); }

TEST(Marshal, Sp) { expect_round_trip(Object{SpHandle{7, "bg"}}); }

TEST(Marshal, NestedBag) {
  Bag inner{Object{1}, Object{"x"}};
  Bag outer{Object{std::move(inner)}, Object{2.5}, Object{}};
  expect_round_trip(Object{std::move(outer)});
}

TEST(Marshal, SizeMatchesMarshaledSizeForRealKinds) {
  // For every kind except SynthArray, marshaled_size() must equal the
  // physical encoding length.
  std::vector<Object> objs{Object{},
                           Object{std::int64_t{9}},
                           Object{1.5},
                           Object{true},
                           Object{std::string("abc")},
                           Object{std::vector<double>{1, 2, 3}},
                           Object{std::vector<std::complex<double>>{{1, 1}}},
                           Object{SpHandle{3, "be"}},
                           Object{Bag{Object{1}, Object{"q"}}}};
  for (const auto& o : objs) {
    std::vector<std::uint8_t> buf;
    marshal(o, buf);
    EXPECT_EQ(buf.size(), o.marshaled_size()) << o.to_string();
  }
}

TEST(Marshal, SynthSizeCountsSimulatedPayload) {
  Object o{SynthArray{1000, 1}};
  std::vector<std::uint8_t> buf;
  marshal(o, buf);
  EXPECT_EQ(buf.size(), 17u);                 // physical: tag + 2x u64
  EXPECT_EQ(o.marshaled_size(), 17u + 1000u);  // simulated: + payload
}

TEST(Marshal, AllRoundTrip) {
  std::vector<Object> objs{Object{1}, Object{"two"}, Object{3.0}};
  auto buf = marshal_all(objs);
  auto back = unmarshal_all(buf);
  EXPECT_EQ(back, objs);
}

TEST(Marshal, FuzzRoundTrip) {
  util::Rng rng(2024);
  for (int iter = 0; iter < 200; ++iter) {
    Bag bag;
    int n = static_cast<int>(rng.uniform_int(0, 5));
    for (int i = 0; i < n; ++i) {
      switch (rng.uniform_int(0, 4)) {
        case 0: bag.emplace_back(rng.uniform_int(-1000, 1000)); break;
        case 1: bag.emplace_back(rng.uniform(-1e6, 1e6)); break;
        case 2: bag.emplace_back(std::string(static_cast<std::size_t>(rng.uniform_int(0, 30)), 'x')); break;
        case 3: bag.emplace_back(SynthArray{static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20)), 0}); break;
        default: bag.emplace_back(Object{}); break;
      }
    }
    expect_round_trip(Object{std::move(bag)});
  }
}

// ---------------------------------------------------------------------
// Property-style round-trips: every Kind, through every entry point.
// ---------------------------------------------------------------------

// One Object per Kind plus the edge shapes the wire format has to get
// right: empty string/arrays/bag, inline and boxed SpHandle, and a bag
// nested 16 levels deep.
std::vector<Object> every_kind_corpus() {
  std::vector<Object> objs;
  objs.emplace_back();                                         // null
  objs.emplace_back(std::int64_t{-1});                         // int
  objs.emplace_back(2.5);                                      // real
  objs.emplace_back(true);                                     // bool
  objs.emplace_back(std::string("kind coverage"));             // str
  objs.emplace_back(std::string());                            // empty str
  objs.emplace_back(std::vector<double>{1.0, -2.0, 1e-300});   // darray
  objs.emplace_back(std::vector<double>{});                    // empty darray
  objs.emplace_back(std::vector<std::complex<double>>{{1, 2}, {-3, 0}});
  objs.emplace_back(std::vector<std::complex<double>>{});      // empty carray
  objs.emplace_back(SynthArray{12345, 7});                     // synth
  objs.emplace_back(SpHandle{1, "bg"});                        // sp (inline)
  objs.emplace_back(SpHandle{2, "very-long-cluster-name"});    // sp (boxed)
  objs.emplace_back(Bag{});                                    // empty bag
  Object deep{std::int64_t{0}};
  for (int d = 0; d < 16; ++d) {
    Bag level;
    level.push_back(std::move(deep));
    level.emplace_back(std::int64_t{d});
    deep = Object{std::move(level)};
  }
  objs.push_back(std::move(deep));                             // deep bag
  return objs;
}

// Round-trips `obj` through (a) the free functions, (b) MarshalWriter +
// MarshalReader::read(), and (c) MarshalReader::read_into() aimed at
// targets of every prior shape — the recycle path must overwrite stale
// state of any kind, including bags with more slots than the decode.
void expect_round_trip_all_paths(const Object& obj) {
  std::vector<std::uint8_t> via_free;
  marshal(obj, via_free);
  std::size_t off = 0;
  EXPECT_EQ(unmarshal(via_free, off), obj);
  EXPECT_EQ(off, via_free.size());

  std::vector<std::uint8_t> via_writer;
  MarshalWriter writer(via_writer);
  writer.write(obj);
  EXPECT_EQ(via_writer, via_free) << "encoders disagree for " << obj.to_string();
  MarshalReader reader(via_writer);
  EXPECT_EQ(reader.read(), obj);
  EXPECT_TRUE(reader.done());

  const std::vector<Object> stale_targets{
      Object{},
      Object{std::int64_t{9}},
      Object{std::string("stale string")},
      Object{std::vector<double>{9, 9, 9, 9}},
      Object{Bag{Object{1}, Object{"x"}, Object{2.0}}},
  };
  for (const auto& stale : stale_targets) {
    Object target = stale;
    MarshalReader r(via_writer);
    r.read_into(target);
    EXPECT_TRUE(r.done());
    EXPECT_EQ(target, obj) << "read_into over " << stale.to_string();
    // Decode again into the now-warm target: must stay equal (capacity
    // reuse must not change the decoded value).
    MarshalReader r2(via_writer);
    r2.read_into(target);
    EXPECT_EQ(target, obj);
  }
}

TEST(MarshalProperty, EveryKindAllPaths) {
  for (const auto& obj : every_kind_corpus()) expect_round_trip_all_paths(obj);
}

TEST(MarshalProperty, MixedStreamIntoOneRecycledSlot) {
  // A whole mixed-kind stream through one shared buffer, decoded into a
  // single recycled Object — the receive loop's steady state.
  const auto corpus = every_kind_corpus();
  std::vector<std::uint8_t> buf;
  MarshalWriter writer(buf);
  for (const auto& obj : corpus) writer.write(obj);
  MarshalReader reader(buf);
  Object slot;
  std::size_t i = 0;
  while (!reader.done()) {
    ASSERT_LT(i, corpus.size());
    reader.read_into(slot);
    EXPECT_EQ(slot, corpus[i]) << "stream position " << i;
    ++i;
  }
  EXPECT_EQ(i, corpus.size());
}

TEST(MarshalProperty, ShrinkingBagLeavesNoStaleTail) {
  Object small{Bag{Object{std::int64_t{1}}}};
  Object target{Bag{Object{"a"}, Object{"b"}, Object{"c"}}};
  std::vector<std::uint8_t> buf;
  MarshalWriter writer(buf);
  writer.write(small);
  MarshalReader reader(buf);
  reader.read_into(target);
  EXPECT_EQ(target, small);
  EXPECT_EQ(target.as_bag().size(), 1u);
}

Object random_object(util::Rng& rng, int depth) {
  switch (rng.uniform_int(0, depth > 0 ? 7 : 5)) {
    case 0: return Object{};
    case 1: return Object{rng.uniform_int(-1'000'000, 1'000'000)};
    case 2: return Object{rng.uniform(-1e9, 1e9)};
    case 3: return Object{std::string(static_cast<std::size_t>(rng.uniform_int(0, 40)), 'y')};
    case 4: {
      std::vector<double> a(static_cast<std::size_t>(rng.uniform_int(0, 16)));
      for (auto& x : a) x = rng.uniform(-1, 1);
      return Object{std::move(a)};
    }
    case 5: return Object{SpHandle{static_cast<std::uint64_t>(rng.uniform_int(0, 99)),
                                   rng.uniform_int(0, 1) ? "bg" : "a-cluster-beyond-inline"}};
    default: {
      Bag bag;
      int n = static_cast<int>(rng.uniform_int(0, 4));
      for (int i = 0; i < n; ++i) bag.push_back(random_object(rng, depth - 1));
      return Object{std::move(bag)};
    }
  }
}

TEST(MarshalProperty, FuzzAllPaths) {
  util::Rng rng(4242);
  for (int iter = 0; iter < 150; ++iter) {
    expect_round_trip_all_paths(random_object(rng, 4));
  }
}

// ---------------------------------------------------------------------
// FrameCutter
// ---------------------------------------------------------------------

// Adapter for the scratch-vector push API: collect the cut frames.
std::vector<Frame> push_all(FrameCutter& cutter, Object obj) {
  std::vector<Frame> out;
  cutter.push(std::move(obj), out);
  return out;
}

TEST(FrameCutter, SmallObjectsAccumulate) {
  FrameCutter cutter(100);
  // Int marshals to 9 bytes; 11 of them cross the 100-byte boundary.
  std::vector<Frame> frames;
  for (int i = 0; i < 11; ++i) {
    auto out = push_all(cutter, Object{i});
    for (auto& f : out) frames.push_back(std::move(f));
  }
  ASSERT_EQ(frames.size(), 0u);  // 99 bytes after 11 pushes
  auto out = push_all(cutter, Object{11});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].bytes, 100u);
  // 11 objects end within the first 100 bytes (11*9=99); the 12th ends
  // at byte 108, beyond this frame.
  EXPECT_EQ(out[0].objects.size(), 11u);
}

TEST(FrameCutter, LargeObjectSpansManyFrames) {
  FrameCutter cutter(1000);
  Object big{SynthArray{10'000, 1}};  // marshals to 10'017 simulated bytes
  auto frames = push_all(cutter, big);
  ASSERT_EQ(frames.size(), 10u);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(frames[static_cast<std::size_t>(i)].bytes, 1000u);
    EXPECT_TRUE(frames[static_cast<std::size_t>(i)].objects.empty());
  }
  // The object's last byte lands in frame 10 (bytes 9000..9999 < 10017):
  // not yet complete there either.
  EXPECT_TRUE(frames[9].objects.empty());
  Frame last = cutter.finish();
  EXPECT_TRUE(last.eos);
  EXPECT_EQ(last.bytes, 17u);
  ASSERT_EQ(last.objects.size(), 1u);
  EXPECT_EQ(last.objects[0], big);
}

TEST(FrameCutter, FinishOnEmptyStream) {
  FrameCutter cutter(512);
  Frame f = cutter.finish();
  EXPECT_TRUE(f.eos);
  EXPECT_EQ(f.bytes, 0u);
  EXPECT_TRUE(f.objects.empty());
}

TEST(FrameCutter, ByteConservation) {
  util::Rng rng(7);
  FrameCutter cutter(777);
  std::uint64_t total_emitted = 0;
  std::size_t objects_out = 0;
  std::uint64_t pushed = 0;
  for (int i = 0; i < 100; ++i) {
    Object o{SynthArray{static_cast<std::uint64_t>(rng.uniform_int(0, 4000)), 0}};
    pushed += o.marshaled_size();
    for (auto& f : push_all(cutter, std::move(o))) {
      total_emitted += f.bytes;
      objects_out += f.objects.size();
    }
  }
  Frame last = cutter.finish();
  total_emitted += last.bytes;
  objects_out += last.objects.size();
  EXPECT_EQ(total_emitted, pushed);
  EXPECT_EQ(objects_out, 100u);
  EXPECT_EQ(cutter.total_pushed_bytes(), pushed);
}

TEST(FrameCutter, ExactFit) {
  FrameCutter cutter(9);  // exactly one marshaled int
  auto frames = push_all(cutter, Object{5});
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].bytes, 9u);
  ASSERT_EQ(frames[0].objects.size(), 1u);
  Frame last = cutter.finish();
  EXPECT_EQ(last.bytes, 0u);
}

TEST(FrameCutter, SequenceNumbersIncrease) {
  FrameCutter cutter(9);
  std::uint64_t expected = 0;
  for (int i = 0; i < 5; ++i) {
    auto frames = push_all(cutter, Object{i});
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].seq, expected++);
  }
  EXPECT_EQ(cutter.finish().seq, expected);
}

// ---------------------------------------------------------------------
// FramePool recycling
// ---------------------------------------------------------------------

TEST(FramePool, RecycledFrameDoesNotLeakState) {
  FramePool pool;
  Frame f = pool.acquire();
  f.bytes = 999;
  f.eos = true;
  f.producer = 5;
  f.seq = 42;
  f.objects.emplace_back(std::int64_t{7});
  f.objects.emplace_back(std::string("stale payload"));
  pool.recycle(std::move(f));

  Frame g = pool.acquire();
  EXPECT_EQ(g.bytes, 0u);
  EXPECT_TRUE(g.objects.empty());
  EXPECT_FALSE(g.eos);
  EXPECT_EQ(g.producer, 0u);
  EXPECT_EQ(g.seq, 0u);
  EXPECT_EQ(g.pool, &pool);
  EXPECT_GE(g.objects.capacity(), 2u);  // capacity survives the recycle
  EXPECT_EQ(pool.acquired(), 2u);
  EXPECT_EQ(pool.reused(), 1u);
  EXPECT_EQ(pool.recycled(), 1u);
}

TEST(FramePool, CutterStreamsFromRecycledPoolStayClean) {
  // Run one stream to completion (its final frame carries eos), recycle
  // everything, then run a second stream from the same pool: no frame of
  // the second stream may inherit eos, bytes, or leftover objects.
  FramePool pool;
  std::vector<Frame> scratch;
  {
    FrameCutter cutter(10, &pool);
    cutter.push(Object{std::string("0123456789abcdef")}, scratch);
    Frame last = cutter.finish();
    EXPECT_TRUE(last.eos);
    pool.recycle(std::move(last));
    for (auto& f : scratch) pool.recycle(std::move(f));
    scratch.clear();
  }
  FrameCutter cutter(10, &pool);
  cutter.push(Object{std::string("fresh stream bytes")}, scratch);
  ASSERT_FALSE(scratch.empty());
  EXPECT_GT(pool.reused(), 0u);
  for (const auto& f : scratch) {
    EXPECT_FALSE(f.eos);
    EXPECT_LE(f.objects.size(), 1u);
  }
}

TEST(FramePool, SteadyStateSynthStreamConstructsNoNewFrames) {
  // The zero-churn invariant behind the transport.frame_pool.* gauges:
  // acquired - reused counts frames ever default-constructed, and it
  // must stay flat once the free list has warmed up — a second identical
  // SynthArray stream runs entirely on recycled frames.
  FramePool pool;
  std::vector<Frame> scratch;
  auto run_stream = [&] {
    FrameCutter cutter(1000, &pool);
    for (int i = 0; i < 8; ++i) {
      scratch.clear();
      cutter.push(Object{SynthArray{100'000, static_cast<std::uint64_t>(i)}}, scratch);
      for (auto& f : scratch) pool.recycle(std::move(f));
    }
    scratch.clear();
    pool.recycle(cutter.finish());
  };
  run_stream();
  const std::uint64_t constructed = pool.acquired() - pool.reused();
  EXPECT_GT(pool.reused(), 0u);
  run_stream();
  EXPECT_EQ(pool.acquired() - pool.reused(), constructed)
      << "second stream constructed fresh frames — pool recycling broke";
}

// ---------------------------------------------------------------------
// Drivers over links (end-to-end transport)
// ---------------------------------------------------------------------

struct Pipe {
  sim::Simulator sim;
  hw::Machine machine{sim};
  DriverParams params;
  std::unique_ptr<ReceiverDriver> rx;
  std::unique_ptr<SenderDriver> tx;

  Pipe(hw::Location src, hw::Location dst, std::uint64_t buffer_bytes, int send_buffers) {
    params.buffer_bytes = buffer_bytes;
    params.send_buffers = send_buffers;
    rx = std::make_unique<ReceiverDriver>(sim, params, machine.cpu_of(dst));
    auto link = make_link(machine, src, dst, rx->inbox(), /*source_tag=*/1);
    tx = std::make_unique<SenderDriver>(sim, params, machine.cpu_of(src), std::move(link), 1);
  }
};

sim::Task<void> produce_ints(SenderDriver& tx, int n) {
  for (int i = 0; i < n; ++i) co_await tx.push(Object{i});
  co_await tx.finish();
}

sim::Task<void> consume_all(ReceiverDriver& rx, std::vector<Object>& out) {
  while (auto o = co_await rx.next()) out.push_back(std::move(*o));
}

TEST(Drivers, MpiDeliversAllObjectsInOrder) {
  Pipe p({"bg", 1}, {"bg", 0}, 64, 2);
  std::vector<Object> got;
  p.sim.spawn(produce_ints(*p.tx, 50));
  p.sim.spawn(consume_all(*p.rx, got));
  p.sim.run();
  ASSERT_EQ(got.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)].as_int(), i);
  EXPECT_EQ(p.sim.live_root_tasks(), 0u);
}

TEST(Drivers, TcpToBgDelivers) {
  Pipe p({"be", 0}, {"bg", 3}, 1024, 2);
  std::vector<Object> got;
  p.sim.spawn(produce_ints(*p.tx, 20));
  p.sim.spawn(consume_all(*p.rx, got));
  p.sim.run();
  EXPECT_EQ(got.size(), 20u);
}

TEST(Drivers, TcpFromBgDelivers) {
  Pipe p({"bg", 2}, {"fe", 0}, 1024, 2);
  std::vector<Object> got;
  p.sim.spawn(produce_ints(*p.tx, 20));
  p.sim.spawn(consume_all(*p.rx, got));
  p.sim.run();
  EXPECT_EQ(got.size(), 20u);
}

TEST(Drivers, PlainTcpDelivers) {
  Pipe p({"be", 0}, {"fe", 1}, 512, 1);
  std::vector<Object> got;
  p.sim.spawn(produce_ints(*p.tx, 20));
  p.sim.spawn(consume_all(*p.rx, got));
  p.sim.run();
  EXPECT_EQ(got.size(), 20u);
}

TEST(Drivers, LocalLinkDelivers) {
  Pipe p({"fe", 0}, {"fe", 0}, 512, 2);
  std::vector<Object> got;
  p.sim.spawn(produce_ints(*p.tx, 20));
  p.sim.spawn(consume_all(*p.rx, got));
  p.sim.run();
  EXPECT_EQ(got.size(), 20u);
}

TEST(Drivers, LargeSynthArraysSpanBuffers) {
  Pipe p({"bg", 1}, {"bg", 0}, 1000, 2);
  std::vector<Object> got;
  p.sim.spawn([](SenderDriver& tx) -> sim::Task<void> {
    for (int i = 0; i < 5; ++i) co_await tx.push(Object{SynthArray{30'000, static_cast<std::uint64_t>(i)}});
    co_await tx.finish();
  }(*p.tx));
  p.sim.spawn(consume_all(*p.rx, got));
  p.sim.run();
  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)].as_synth().seq,
                                        static_cast<std::uint64_t>(i));
  // All payload bytes crossed the wire.
  EXPECT_EQ(p.rx->bytes_received(), p.tx->bytes_sent());
  EXPECT_GE(p.tx->bytes_sent(), 5u * 30'000u);
}

TEST(Drivers, DoubleBufferingIsNotSlower) {
  auto run_with = [](int send_buffers) {
    Pipe p({"bg", 1}, {"bg", 0}, 4096, send_buffers);
    std::vector<Object> got;
    p.sim.spawn([](SenderDriver& tx) -> sim::Task<void> {
      for (int i = 0; i < 20; ++i) co_await tx.push(Object{SynthArray{100'000, 0}});
      co_await tx.finish();
    }(*p.tx));
    p.sim.spawn(consume_all(*p.rx, got));
    return p.sim.run();
  };
  double t_single = run_with(1);
  double t_double = run_with(2);
  EXPECT_LT(t_double, t_single);
}

TEST(Drivers, FlowsCloseAfterEos) {
  Pipe p({"be", 0}, {"bg", 0}, 1024, 2);
  std::vector<Object> got;
  p.sim.spawn(produce_ints(*p.tx, 5));
  p.sim.spawn(consume_all(*p.rx, got));
  p.sim.run();
  EXPECT_EQ(p.machine.fabric().distinct_senders_to_ionodes(), 0);
  EXPECT_DOUBLE_EQ(p.machine.compute_mux_factor(0), 1.0);
}

TEST(Drivers, LingerFlushesPartialBuffer) {
  // A single small object in a large buffer must still be delivered
  // (after the linger interval), not held until the buffer fills.
  Pipe p({"bg", 1}, {"bg", 0}, 64 * 1024, 2);
  std::vector<Object> got;
  double delivered_at = -1.0;
  p.sim.spawn([](SenderDriver& tx) -> sim::Task<void> {
    co_await tx.push(Object{7});
    // Keep the stream open (no finish) for a while.
  }(*p.tx));
  p.sim.spawn([](sim::Simulator& s, ReceiverDriver& rx, std::vector<Object>& out,
                 double& at) -> sim::Task<void> {
    auto o = co_await rx.next();
    if (o) {
      out.push_back(std::move(*o));
      at = s.now();
    }
  }(p.sim, *p.rx, got, delivered_at));
  p.sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].as_int(), 7);
  // Delivered roughly one linger interval after the push, far sooner
  // than a full 64 KiB buffer would have taken to fill (never).
  EXPECT_GE(delivered_at, p.params.linger_s);
  EXPECT_LT(delivered_at, 3 * p.params.linger_s);
}

TEST(Drivers, LingerDisabledHoldsPartialBuffer) {
  Pipe p({"bg", 1}, {"bg", 0}, 64 * 1024, 2);
  // Rebuild the sender with linger disabled.
  p.params.linger_s = 0.0;
  auto link = make_link(p.machine, {"bg", 1}, {"bg", 0}, p.rx->inbox(), 2);
  SenderDriver tx(p.sim, p.params, p.machine.cpu_of({"bg", 1}), std::move(link), 2);
  bool got_any = false;
  p.sim.spawn([](SenderDriver& t) -> sim::Task<void> {
    co_await t.push(Object{7});
  }(tx));
  p.sim.spawn([](ReceiverDriver& rx, bool& flag) -> sim::Task<void> {
    auto o = co_await rx.next();
    flag = o.has_value();
  }(*p.rx, got_any));
  p.sim.run(1.0);  // bounded: the receiver legitimately waits forever
  EXPECT_FALSE(got_any);
}

TEST(Drivers, LingerPreservesOrderWithLaterPushes) {
  Pipe p({"bg", 1}, {"bg", 0}, 64, 2);
  std::vector<Object> got;
  p.sim.spawn([](sim::Simulator& s, SenderDriver& tx) -> sim::Task<void> {
    co_await tx.push(Object{1});          // partial: linger will flush it
    co_await s.delay(0.05);               // > linger
    for (int i = 2; i <= 20; ++i) co_await tx.push(Object{i});
    co_await tx.finish();
  }(p.sim, *p.tx));
  p.sim.spawn(consume_all(*p.rx, got));
  p.sim.run();
  ASSERT_EQ(got.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)].as_int(), i + 1);
}

TEST(Drivers, BackpressureBoundsInbox) {
  // A consumer that never drains: the sender must stall rather than
  // flood the inbox.
  Pipe p({"bg", 1}, {"bg", 0}, 64, 2);
  p.sim.spawn([](SenderDriver& tx) -> sim::Task<void> {
    for (int i = 0; i < 1000; ++i) co_await tx.push(Object{SynthArray{1000, 0}});
    co_await tx.finish();
  }(*p.tx));
  p.sim.run();
  // Producer is stalled (live), inbox holds at most recv_buffers frames.
  EXPECT_GE(p.sim.live_root_tasks(), 1u);
  EXPECT_LE(p.rx->inbox().size(), static_cast<std::size_t>(p.params.recv_buffers));
}

}  // namespace
}  // namespace scsq::transport
