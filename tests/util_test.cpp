#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace scsq::util {
namespace {

TEST(Strings, SplitBasic) {
  auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepsEmptyFields) {
  auto parts = split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(Strings, SplitSingleField) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, JoinRoundTrip) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(join(parts, "::"), "x::y::z");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("select x", "select"));
  EXPECT_FALSE(starts_with("sel", "select"));
  EXPECT_TRUE(ends_with("query.sql", ".sql"));
  EXPECT_FALSE(ends_with("sql", ".sql"));
}

TEST(Strings, ToLowerAndContains) {
  EXPECT_EQ(to_lower("SeLeCt"), "select");
  EXPECT_TRUE(contains("needle in haystack", "in hay"));
  EXPECT_FALSE(contains("abc", "abd"));
}

TEST(Stats, MeanAndStdev) {
  Stats s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.stdev(), 1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(Stats, SingleSampleHasZeroSpread) {
  Stats s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stdev(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95(), 0.0);
}

TEST(Stats, EmptyMeanIsZero) {
  Stats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Bytes, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(3 * 1024 * 1024), "3.0 MiB");
}

TEST(Bytes, FormatBandwidth) {
  EXPECT_EQ(format_bandwidth_bps(921.3e6), "921.3 Mbit/s");
  EXPECT_EQ(format_bandwidth_bps(1.4e9), "1.4 Gbit/s");
}

TEST(Bytes, ToMbps) {
  // 1 MB in 1 s = 8 Mbit/s.
  EXPECT_DOUBLE_EQ(to_mbps(1'000'000, 1.0), 8.0);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, JitterStaysPositive) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.jitter(0.5), 0.0);
  }
}

TEST(ThreadPool, RunsAllSubmittedTasks) {
  std::atomic<int> count{0};
  ThreadPool pool(4);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&count] { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ShutdownIsIdempotentAndDrainsFirst) {
  std::atomic<int> count{0};
  ThreadPool pool(2);
  for (int i = 0; i < 50; ++i) pool.submit([&count] { count.fetch_add(1); });
  pool.shutdown();  // drain-then-join
  EXPECT_EQ(count.load(), 50);
  EXPECT_EQ(pool.thread_count(), 0u);
  pool.shutdown();  // second call is a no-op
  pool.shutdown();
  EXPECT_EQ(count.load(), 50);
}

TEST(ParallelChunks, StableRangesForEveryThreadCount) {
  // Chunk boundaries depend only on (n, chunks), never on thread count.
  constexpr std::size_t kN = 103;
  constexpr std::size_t kChunks = 7;
  std::vector<std::pair<std::size_t, std::size_t>> reference(kChunks);
  parallel_chunks(kN, 1, kChunks, [&](std::size_t c, std::size_t b, std::size_t e) {
    reference[c] = {b, e};
  });
  // Contiguous, ordered, covering [0, n).
  EXPECT_EQ(reference.front().first, 0u);
  EXPECT_EQ(reference.back().second, kN);
  for (std::size_t c = 1; c < kChunks; ++c) {
    EXPECT_EQ(reference[c].first, reference[c - 1].second);
    EXPECT_LT(reference[c].first, reference[c].second);  // no empty chunk
  }
  for (unsigned threads : {2u, 4u, 16u}) {
    std::vector<std::pair<std::size_t, std::size_t>> got(kChunks);
    std::mutex mu;
    parallel_chunks(kN, threads, kChunks, [&](std::size_t c, std::size_t b, std::size_t e) {
      std::lock_guard<std::mutex> lock(mu);
      got[c] = {b, e};
    });
    EXPECT_EQ(got, reference) << "threads " << threads;
  }
}

TEST(ParallelChunks, ClampsChunksToItems) {
  std::atomic<int> calls{0};
  parallel_chunks(3, 8, 10, [&](std::size_t, std::size_t b, std::size_t e) {
    EXPECT_EQ(e, b + 1);  // 10 chunks over 3 items clamps to 3 singletons
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 3);
  parallel_chunks(0, 4, 4, [&](std::size_t, std::size_t, std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 3);  // n == 0: no calls
}

TEST(ParallelChunks, RethrowsLowestChunkException) {
  for (unsigned threads : {1u, 4u}) {
    try {
      parallel_chunks(16, threads, 8, [](std::size_t c, std::size_t, std::size_t) {
        if (c == 2 || c == 6) throw std::runtime_error("chunk " + std::to_string(c));
      });
      FAIL() << "expected exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk 2");
    }
  }
}

TEST(ParallelFor, CoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(hits.size(), 4, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SingleThreadRunsInlineInOrder) {
  std::vector<std::size_t> order;
  parallel_for(10, 1, [&](std::size_t i) { order.push_back(i); });  // no locking needed
  std::vector<std::size_t> expect(10);
  std::iota(expect.begin(), expect.end(), 0u);
  EXPECT_EQ(order, expect);
}

TEST(ParallelFor, RethrowsLowestIndexException) {
  for (unsigned threads : {1u, 4u}) {
    try {
      parallel_for(16, threads, [](std::size_t i) {
        if (i == 3 || i == 11) throw std::runtime_error("fail " + std::to_string(i));
      });
      FAIL() << "expected exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "fail 3");
    }
  }
}

TEST(RunSweep, ResultsKeepPointOrderAcrossThreadCounts) {
  std::vector<int> points(64);
  std::iota(points.begin(), points.end(), 0);
  auto sequential = run_sweep(points, [](const int& p) { return p * p; }, 1);
  auto parallel = run_sweep(points, [](const int& p) { return p * p; }, 4);
  EXPECT_EQ(sequential, parallel);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(sequential[static_cast<std::size_t>(i)], i * i);
}

TEST(ThreadPoolDefaults, EnvOverrideWins) {
  setenv("SCSQ_BENCH_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_threads(), 3u);
  setenv("SCSQ_BENCH_THREADS", "1", 1);
  EXPECT_EQ(ThreadPool::default_threads(), 1u);
  unsetenv("SCSQ_BENCH_THREADS");
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

}  // namespace
}  // namespace scsq::util
