#!/usr/bin/env bash
# CI smoke pass: build, run the unit/integration tests, then run every
# bench in quick mode with two sweep worker threads so the parallel
# harness path is exercised on every change.
#
# Usage: tools/ci_smoke.sh [build-dir]     (default: build)
# Env:   SCSQ_TSAN=1 adds -DSCSQ_TSAN=ON (ThreadSanitizer build).
#        SCSQ_ASAN=1 adds -DSCSQ_ASAN=ON (AddressSanitizer build; the
#        pooled frame/marshal data plane recycles buffers aggressively,
#        so transport tests under ASAN guard against use-after-recycle).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}
CMAKE_ARGS=()
if [[ "${SCSQ_TSAN:-0}" == "1" ]]; then
  CMAKE_ARGS+=(-DSCSQ_TSAN=ON)
fi
if [[ "${SCSQ_ASAN:-0}" == "1" ]]; then
  CMAKE_ARGS+=(-DSCSQ_ASAN=ON)
fi

cmake -B "$BUILD" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD" -j"$(nproc)"
(cd "$BUILD" && ctest --output-on-failure -j"$(nproc)")

export SCSQ_BENCH_QUICK=1
export SCSQ_BENCH_THREADS=2

TMPD=$(mktemp -d)
trap 'rm -rf "$TMPD"' EXIT

# validate_json FILE — every line (JSONL) or the whole document must be
# valid JSON; metrics/trace exports are hand-rolled, so check them here.
validate_json() {
  if python3 -m json.tool "$1" > /dev/null 2>&1; then
    return 0
  fi
  # Not a single document: require every non-empty line to parse (JSONL).
  python3 - "$1" <<'EOF'
import json, sys
path = sys.argv[1]
for n, line in enumerate(open(path), 1):
    if not line.strip():
        continue
    try:
        json.loads(line)
    except json.JSONDecodeError as e:
        sys.exit(f"{path}:{n}: invalid JSON: {e}")
EOF
}

for b in fig6_p2p fig8_merge fig15_inbound \
         ablate_coproc ablate_dblbuf ablate_nodesel ablate_smartsel \
         linear_road; do
  echo "== bench_$b (quick, 2 threads) =="
  SCSQ_METRICS_OUT="$TMPD/$b.jsonl" "$BUILD/bench/bench_$b" > /dev/null
  if [[ -f "$TMPD/$b.jsonl" ]]; then
    validate_json "$TMPD/$b.jsonl"
    echo "   metrics JSONL ok ($(wc -l < "$TMPD/$b.jsonl") records)"
  fi
done

# Kernel microbenchmarks: one fast shot each, just to prove they run.
"$BUILD/bench/bench_kernels" --benchmark_filter='BM_(SimulatorEventThroughput|WaitQueueWakeup|ChannelPingPong)' > /dev/null

# Shell smoke: trace + \metrics snapshot on a tiny query; both exports
# must be valid JSON / contain the expected sections.
echo "== scsql_shell trace + metrics =="
echo "select extract(b) from sp a, sp b
 where b=sp(streamof(count(extract(a))),'bg',0)
 and a=sp(gen_array(100000,2),'bg',1);
\\metrics" | SCSQ_TRACE="$TMPD/shell_trace.json" "$BUILD/tools/scsql_shell" > "$TMPD/shell_out.txt"
validate_json "$TMPD/shell_trace.json"
grep -q '# TYPE' "$TMPD/shell_out.txt" || { echo "missing \\metrics output"; exit 1; }

# Profiler smoke: SCSQ_PROFILE_OUT must leave bench stdout byte-identical,
# produce valid JSONL, and hold the attribution invariant (attributed
# seconds sum to elapsed) for every sweep point.
echo "== bench_fig6_p2p profile capture =="
"$BUILD/bench/bench_fig6_p2p" > "$TMPD/fig6_plain.txt" 2> /dev/null
SCSQ_PROFILE_OUT="$TMPD/fig6_profile.jsonl" \
  "$BUILD/bench/bench_fig6_p2p" > "$TMPD/fig6_profiled.txt" 2> /dev/null
cmp "$TMPD/fig6_plain.txt" "$TMPD/fig6_profiled.txt" || {
  echo "SCSQ_PROFILE_OUT changed bench stdout"; exit 1; }
validate_json "$TMPD/fig6_profile.jsonl"
echo "   profile JSONL ok ($(wc -l < "$TMPD/fig6_profile.jsonl") records), stdout byte-identical"
"$BUILD/tools/metrics_diff" --check-profile "$TMPD/fig6_profile.jsonl"

# Batch-execution invariance: the fig8 quick tables must be byte-
# identical with batching disabled (SCSQ_BATCH_SIZE=1, the exact
# per-item path) and at the default batch size. Only the [harness]
# banner line may differ — it reports host wall clock.
echo "== bench_fig8_merge batch invariance =="
SCSQ_BATCH_SIZE=1 "$BUILD/bench/bench_fig8_merge" 2> /dev/null \
  | grep -v '^\[harness\]' > "$TMPD/fig8_batch1.txt"
"$BUILD/bench/bench_fig8_merge" 2> /dev/null \
  | grep -v '^\[harness\]' > "$TMPD/fig8_batchdef.txt"
cmp "$TMPD/fig8_batch1.txt" "$TMPD/fig8_batchdef.txt" || {
  echo "SCSQ_BATCH_SIZE changed bench output"; exit 1; }
echo "   fig8 tables byte-identical at SCSQ_BATCH_SIZE=1 vs default"

# Shell EXPLAIN ANALYZE smoke on the Fig. 8 merge query: the report must
# show the plan tree, a critical path, and a 100% attribution total.
echo "== scsql_shell explain analyze =="
echo "\\explain analyze select extract(c) from sp a, sp b, sp c
 where c=sp(count(merge({a,b})), 'bg',0)
 and a=sp(gen_array(100000,2),'bg',1)
 and b=sp(gen_array(100000,2),'bg',2);" \
  | "$BUILD/tools/scsql_shell" > "$TMPD/explain_out.txt"
grep -q 'EXPLAIN ANALYZE' "$TMPD/explain_out.txt" || { echo "missing EXPLAIN ANALYZE header"; exit 1; }
grep -q 'critical path:' "$TMPD/explain_out.txt" || { echo "missing critical path"; exit 1; }
grep -Eq 'total +.* 100\.0%' "$TMPD/explain_out.txt" || { echo "attribution does not total 100%"; exit 1; }

# Data-plane microbenchmarks: marshal round-trips and the frame cutter
# must at least run to completion on every change (pool + flat writer
# smoke; perf is tracked separately via BENCH_kernels.json).
echo "== bench_kernels marshal/frame smoke =="
"$BUILD/bench/bench_kernels" --benchmark_filter='BM_(MarshalRoundTrip|FrameCutterCut|FramePoolRecycle|OperatorPipeline)' > /dev/null

# Parallel-LP invariance: the fig6 quick tables must be byte-identical
# for every SCSQ_SIM_LPS (the LP count is a semantic knob whose only
# observable effect is the engine.rp.lp / engine.sim_lps gauges on the
# metrics side channel — never stdout). Only the [harness] stderr banner
# carries wall clock, and it is not captured here.
echo "== bench_fig6_p2p SCSQ_SIM_LPS invariance =="
SCSQ_SIM_LPS=1 "$BUILD/bench/bench_fig6_p2p" 2> /dev/null > "$TMPD/fig6_lps1.txt"
SCSQ_SIM_LPS=4 "$BUILD/bench/bench_fig6_p2p" 2> /dev/null > "$TMPD/fig6_lps4.txt"
cmp "$TMPD/fig6_lps1.txt" "$TMPD/fig6_lps4.txt" || {
  echo "SCSQ_SIM_LPS changed bench output"; exit 1; }
echo "   fig6 tables byte-identical at SCSQ_SIM_LPS=1 vs 4"

# Telemetry-sampler smoke: arming SCSQ_SAMPLE_INTERVAL must leave bench
# stdout byte-identical (sampler on/off, crossed with SCSQ_SIM_LPS 1/4 —
# the sampler's zero-duration ticks may not perturb a single simulated
# second), the SCSQ_TIMESERIES_OUT JSONL must validate, and the
# --timeseries analyzer must hold its exit-code contract: 0 on a clean
# analyze and on a self-diff, 1 on an injected steady-rate regression.
echo "== telemetry sampler time series =="
SCSQ_SAMPLE_INTERVAL=0.05 SCSQ_TIMESERIES_OUT="$TMPD/fig6_ts.jsonl" \
  "$BUILD/bench/bench_fig6_p2p" 2> /dev/null > "$TMPD/fig6_sampled.txt"
cmp "$TMPD/fig6_plain.txt" "$TMPD/fig6_sampled.txt" || {
  echo "SCSQ_SAMPLE_INTERVAL changed bench stdout"; exit 1; }
SCSQ_SAMPLE_INTERVAL=0.05 SCSQ_SIM_LPS=4 \
  "$BUILD/bench/bench_fig6_p2p" 2> /dev/null > "$TMPD/fig6_sampled_lps4.txt"
cmp "$TMPD/fig6_plain.txt" "$TMPD/fig6_sampled_lps4.txt" || {
  echo "SCSQ_SAMPLE_INTERVAL x SCSQ_SIM_LPS changed bench stdout"; exit 1; }
validate_json "$TMPD/fig6_ts.jsonl"
echo "   stdout byte-identical sampler on/off at SCSQ_SIM_LPS 1 and 4;" \
     "JSONL ok ($(wc -l < "$TMPD/fig6_ts.jsonl") windows)"
"$BUILD/tools/metrics_diff" --timeseries "$TMPD/fig6_ts.jsonl" > /dev/null
"$BUILD/tools/metrics_diff" --timeseries "$TMPD/fig6_ts.jsonl" "$TMPD/fig6_ts.jsonl" > /dev/null
cat > "$TMPD/ts_seed.jsonl" <<'EOF'
{"point":0,"window":0,"t_start":0,"t_end":1,"counters":{"transport.link.bytes{src=a}":{"delta":1000,"rate":1000}}}
{"point":0,"window":1,"t_start":1,"t_end":2,"counters":{"transport.link.bytes{src=a}":{"delta":1000,"rate":1000}}}
{"point":0,"window":2,"t_start":2,"t_end":3,"counters":{"transport.link.bytes{src=a}":{"delta":1000,"rate":1000}}}
EOF
sed 's/1000/400/g' "$TMPD/ts_seed.jsonl" > "$TMPD/ts_regressed.jsonl"
rc=0
"$BUILD/tools/metrics_diff" --timeseries \
  "$TMPD/ts_seed.jsonl" "$TMPD/ts_regressed.jsonl" > /dev/null || rc=$?
[[ "$rc" == "1" ]] || { echo "injected time-series regression not flagged (exit $rc)"; exit 1; }
echo "   --timeseries: clean analyze + self-diff exit 0, injected regression exit 1"

# Introspection-monitor smoke: a continuous SCSQL threshold monitor over
# system.metrics must (a) leave bench stdout byte-identical — monitors
# run as zero-duration read-only callbacks at sampler window boundaries
# (DESIGN.md §5.8) — including at SCSQ_SIM_LPS=4 x SCSQ_BATCH_SIZE=1,
# (b) emit at least one alert to SCSQ_MONITOR_OUT, and (c) produce a
# JSONL alert stream that validates under metrics_diff --alerts.
echo "== introspection monitor alerts =="
MONITOR_Q="above(sum(system.rates('transport.link.bytes')), 1)"
SCSQ_SAMPLE_INTERVAL=0.05 SCSQ_MONITOR="$MONITOR_Q" \
  SCSQ_MONITOR_OUT="$TMPD/fig6_alerts.jsonl" \
  "$BUILD/bench/bench_fig6_p2p" 2> /dev/null > "$TMPD/fig6_monitored.txt"
cmp "$TMPD/fig6_plain.txt" "$TMPD/fig6_monitored.txt" || {
  echo "SCSQ_MONITOR changed bench stdout"; exit 1; }
[[ -s "$TMPD/fig6_alerts.jsonl" ]] || { echo "monitor emitted no alerts"; exit 1; }
validate_json "$TMPD/fig6_alerts.jsonl"
SCSQ_SIM_LPS=4 SCSQ_BATCH_SIZE=1 \
  "$BUILD/bench/bench_fig6_p2p" 2> /dev/null > "$TMPD/fig6_lps4b1.txt"
SCSQ_SIM_LPS=4 SCSQ_BATCH_SIZE=1 SCSQ_SAMPLE_INTERVAL=0.05 SCSQ_MONITOR="$MONITOR_Q" \
  "$BUILD/bench/bench_fig6_p2p" 2> /dev/null > "$TMPD/fig6_lps4b1_mon.txt"
cmp "$TMPD/fig6_lps4b1.txt" "$TMPD/fig6_lps4b1_mon.txt" || {
  echo "SCSQ_MONITOR x SCSQ_SIM_LPS x SCSQ_BATCH_SIZE changed bench stdout"; exit 1; }
"$BUILD/tools/metrics_diff" --alerts "$TMPD/fig6_alerts.jsonl"
echo "   stdout byte-identical monitor on/off (also at lps=4 batch=1);" \
     "$(wc -l < "$TMPD/fig6_alerts.jsonl") alert(s) validated"

# Parallel engine drive: the fig8 quick tables must be byte-identical
# at SCSQ_SIM_LPS=4 (the data plane runs across conservative LPs — or
# the sequenced fallback for cross-pset MPI shapes — with identical
# output either way).
echo "== bench_fig8_merge SCSQ_SIM_LPS invariance =="
SCSQ_SIM_LPS=4 "$BUILD/bench/bench_fig8_merge" 2> /dev/null \
  | grep -v '^\[harness\]' > "$TMPD/fig8_lps4.txt"
cmp "$TMPD/fig8_batchdef.txt" "$TMPD/fig8_lps4.txt" || {
  echo "SCSQ_SIM_LPS changed fig8 bench output"; exit 1; }
echo "   fig8 tables byte-identical at SCSQ_SIM_LPS=1 vs 4"

# Pending-event-set invariance: the ladder queue (the default) and the
# binary-heap reference behind SCSQ_EVENT_QUEUE=heap must dispatch in
# the identical (time, seq) order, so the fig6 and fig8 quick tables are
# byte-identical across queue modes — sequential and at SCSQ_SIM_LPS=4
# (windowed drive + sequenced fallback on top of either structure).
echo "== SCSQ_EVENT_QUEUE heap-vs-ladder invariance =="
SCSQ_EVENT_QUEUE=heap "$BUILD/bench/bench_fig6_p2p" 2> /dev/null > "$TMPD/fig6_heap.txt"
cmp "$TMPD/fig6_plain.txt" "$TMPD/fig6_heap.txt" || {
  echo "SCSQ_EVENT_QUEUE changed fig6 bench output"; exit 1; }
SCSQ_EVENT_QUEUE=heap SCSQ_SIM_LPS=4 \
  "$BUILD/bench/bench_fig6_p2p" 2> /dev/null > "$TMPD/fig6_heap_lps4.txt"
cmp "$TMPD/fig6_plain.txt" "$TMPD/fig6_heap_lps4.txt" || {
  echo "SCSQ_EVENT_QUEUE x SCSQ_SIM_LPS changed fig6 bench output"; exit 1; }
SCSQ_EVENT_QUEUE=heap "$BUILD/bench/bench_fig8_merge" 2> /dev/null \
  | grep -v '^\[harness\]' > "$TMPD/fig8_heap.txt"
cmp "$TMPD/fig8_batchdef.txt" "$TMPD/fig8_heap.txt" || {
  echo "SCSQ_EVENT_QUEUE changed fig8 bench output"; exit 1; }
SCSQ_EVENT_QUEUE=heap SCSQ_SIM_LPS=4 "$BUILD/bench/bench_fig8_merge" 2> /dev/null \
  | grep -v '^\[harness\]' > "$TMPD/fig8_heap_lps4.txt"
cmp "$TMPD/fig8_batchdef.txt" "$TMPD/fig8_heap_lps4.txt" || {
  echo "SCSQ_EVENT_QUEUE x SCSQ_SIM_LPS changed fig8 bench output"; exit 1; }
echo "   fig6/fig8 tables byte-identical heap vs ladder (SCSQ_SIM_LPS 1 and 4)"

# Conservative-LP runtime smoke: both benchmarks abort on any LP-count
# determinism violation (checksum / run-report fingerprint vs the
# sequential run), so one fast shot doubles as a correctness gate.
# BM_EngineParallel drives the *whole engine* (parse -> wire -> windowed
# parallel drive) at 1 and 4 LPs.
"$BUILD/bench/bench_kernels" \
  --benchmark_filter='BM_(ParallelSim|EngineParallel)' --benchmark_min_time=0.01 > /dev/null

# TSAN pass over the parallel LP runtime: mailbox SPSC rings, channel
# clocks and the quiescence detector are hand-rolled atomics — run the
# full plp test suite (which includes 4-LP multi-worker runs) under
# ThreadSanitizer. Skipped when the toolchain cannot link a trivial
# -fsanitize=thread program.
if echo 'int main(){}' | c++ -x c++ -fsanitize=thread -o /dev/null - 2> /dev/null; then
  echo "== plp_test under ThreadSanitizer =="
  cmake -B "$BUILD-tsan" -S . -DSCSQ_TSAN=ON > /dev/null
  cmake --build "$BUILD-tsan" -j"$(nproc)" \
    --target plp_test monitor_test engine_parallel_test sim_queue_fuzz_test > /dev/null
  "$BUILD-tsan/tests/plp_test"
  # Ladder-queue differential fuzz under TSAN: the coroutine-frame pool's
  # chunk registry is shared across worker threads.
  "$BUILD-tsan/tests/sim_queue_fuzz_test"
  # Monitor alert files use the shared truncate-once side-channel mutex;
  # run the monitor suite under TSAN alongside the LP runtime.
  "$BUILD-tsan/tests/monitor_test"
  # The engine's windowed parallel drive (per-LP frame pools, frozen
  # fabric factors, deferred link metrics, cross-LP staging) under TSAN.
  "$BUILD-tsan/tests/engine_parallel_test"
else
  echo "== skipping TSAN pass (toolchain lacks ThreadSanitizer) =="
fi

# ASAN pass over the transport tests: the pooled frame/marshal data
# plane recycles buffers aggressively, so guard against use-after-
# recycle and buffer overruns. Skipped when the toolchain cannot link
# a trivial -fsanitize=address program (e.g. libasan not installed).
if echo 'int main(){}' | c++ -x c++ -fsanitize=address -o /dev/null - 2> /dev/null; then
  echo "== transport_test + batch pipeline under AddressSanitizer =="
  cmake -B "$BUILD-asan" -S . -DSCSQ_ASAN=ON > /dev/null
  cmake --build "$BUILD-asan" -j"$(nproc)" \
    --target transport_test monitor_test bench_kernels \
    sim_queue_fuzz_test properties_test > /dev/null
  "$BUILD-asan/tests/transport_test"
  # Ladder-queue differential fuzz + the zero-alloc frame-pool property
  # under ASAN/LSAN: rung/bottom recycling and coroutine-frame reuse must
  # be clean (no use-after-recycle, no leaked chunks at exit).
  "$BUILD-asan/tests/sim_queue_fuzz_test"
  "$BUILD-asan/tests/properties_test" --gtest_filter='CoroPool.*'
  # Monitor plans are driven by manual coroutine resumption (release/
  # resume/destroy); run the monitor suite under ASAN to catch frame
  # lifetime mistakes.
  "$BUILD-asan/tests/monitor_test"
  # Batched operator pulls recycle ItemBatch slots across frames; run the
  # pipeline microbenches under ASAN to catch use-after-recycle there.
  "$BUILD-asan/bench/bench_kernels" \
    --benchmark_filter='BM_OperatorPipeline' --benchmark_min_time=0.01 > /dev/null
else
  echo "== skipping ASAN pass (toolchain lacks AddressSanitizer) =="
fi

# Bench baseline self-check: committed "new" numbers must not regress
# more than 20% against their recorded seeds.
"$BUILD/tools/metrics_diff" --check BENCH_kernels.json

echo "ci_smoke: OK"
