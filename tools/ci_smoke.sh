#!/usr/bin/env bash
# CI smoke pass: build, run the unit/integration tests, then run every
# bench in quick mode with two sweep worker threads so the parallel
# harness path is exercised on every change.
#
# Usage: tools/ci_smoke.sh [build-dir]     (default: build)
# Env:   SCSQ_TSAN=1 adds -DSCSQ_TSAN=ON (ThreadSanitizer build).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}
CMAKE_ARGS=()
if [[ "${SCSQ_TSAN:-0}" == "1" ]]; then
  CMAKE_ARGS+=(-DSCSQ_TSAN=ON)
fi

cmake -B "$BUILD" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD" -j"$(nproc)"
(cd "$BUILD" && ctest --output-on-failure -j"$(nproc)")

export SCSQ_BENCH_QUICK=1
export SCSQ_BENCH_THREADS=2
for b in fig6_p2p fig8_merge fig15_inbound \
         ablate_coproc ablate_dblbuf ablate_nodesel ablate_smartsel \
         linear_road; do
  echo "== bench_$b (quick, 2 threads) =="
  "$BUILD/bench/bench_$b" > /dev/null
done

# Kernel microbenchmarks: one fast shot each, just to prove they run.
"$BUILD/bench/bench_kernels" --benchmark_filter='BM_(SimulatorEventThroughput|WaitQueueWakeup|ChannelPingPong)' > /dev/null

echo "ci_smoke: OK"
