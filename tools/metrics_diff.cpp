// metrics_diff — compare metrics/bench JSON documents and flag
// performance regressions beyond a threshold.
//
// Modes:
//
//   metrics_diff [--threshold=0.2] --check BASELINE.json
//     Self-check of a committed baseline (BENCH_kernels.json style):
//     every object containing a numeric "new" member is a tracked
//     measurement; fail (exit 1) when new < seed*(1-threshold).
//     Also validates that the file parses as strict JSON. Three seed
//     states are distinguished:
//       * numeric "seed"  — compared against "new" (regression gate);
//       * "seed": null    — intentionally unbaselined (e.g. the metric
//                           did not exist before the change); skipped
//                           silently;
//       * no "seed" key   — a measurement whose baseline was forgotten:
//                           reported as MISSING-BASELINE and, when no
//                           real regression also fired, exits 3 so CI
//                           can tell "record a seed" apart from "value
//                           regressed".
//
//   metrics_diff [--threshold=0.2] [--filter=SUB] [--top=N] OLD.json NEW.json
//     Structural diff: every numeric leaf is flattened to a dotted path
//     (obs registry exports, bench JSONL records, bench baselines all
//     work) and matching paths are compared. Leaves present in only one
//     file are listed; a drop beyond the threshold at any shared path
//     fails (exit 1). Files holding JSON-lines (one document per line,
//     e.g. SCSQ_METRICS_OUT output) are wrapped into an array first.
//     --filter keeps only leaf paths containing SUB; --top caps the
//     CHANGED lines at the N largest relative changes (REGRESSION and
//     ONLY-* lines always print).
//
//   metrics_diff --check-profile PROFILE.json
//     Validates EXPLAIN ANALYZE output (SCSQ_PROFILE_OUT JSONL or a
//     single profile document): every profile's attribution must sum to
//     its elapsed time within 0.1% — the profiler's core invariant.
//     Exit 1 when violated, exit 2 when the file holds no profiles.
//
//   metrics_diff [--threshold=0.2] --profile-diff OLD.json NEW.json
//     Pairs profile records by position and compares per-cause
//     attribution shares; fail (exit 1) when any cause's share of
//     elapsed time grew by more than the threshold (absolute, e.g. 0.2
//     = 20 percentage points) — gating attribution regressions such as
//     packetization waste creeping up.
//
//   metrics_diff [--series=SUB] --timeseries SERIES.jsonl
//     Analyzes a telemetry-sampler time series (SCSQ_TIMESERIES_OUT
//     JSONL). Records are grouped by their "point" tag (untagged raw
//     sampler output is one point). Per point the windows are
//     validated (t_start < t_end, contiguous coverage, finite
//     non-negative counter deltas/rates — exit 1 on violation) and a
//     primary rate per window is formed by summing the rates of every
//     counter whose key contains --series. Steady state is the set of
//     windows within ±25% of the median nonzero rate; the report gives
//     ramp time (start to the first steady window), steady mean, peak
//     and p99 window rate.
//
//   metrics_diff [--threshold=0.2] [--series=SUB] --timeseries OLD NEW
//     Pairs points across two time-series files and compares their
//     steady-state mean rates; fail (exit 1) when a point's steady
//     rate drops below old*(1-threshold). Identical inputs exit 0.
//
//   metrics_diff --alerts ALERTS.jsonl
//     Validates and summarizes a monitor-alert stream (SCSQ_MONITOR_OUT
//     JSONL, obs::write_alerts_jsonl shape). Per record: the monitor
//     name, query, numeric window index and row, window bounds with
//     t_start < t_end, and a "value" member must all be present (exit 1
//     on violation; no cross-record window monotonicity is required —
//     appended multi-run files restart their indices). The summary
//     gives per-monitor alert counts, distinct windows, and the fired
//     time range. Exit 2 when the file holds no alert records.
//
// Exit codes: 0 ok, 1 regression/violation found, 2 usage/parse error,
// 3 (--check only) measurement lacking a "seed" key with no regression.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace {

using scsq::util::json::ParseError;
using scsq::util::json::Value;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "metrics_diff: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Whole-document parse, falling back to JSON-lines (each non-empty line
/// one document, collected into an array).
Value parse_file(const std::string& path) {
  const std::string text = read_file(path);
  try {
    return scsq::util::json::parse(text);
  } catch (const ParseError&) {
    std::vector<Value> docs;
    std::istringstream lines(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(lines, line)) {
      ++lineno;
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      try {
        docs.push_back(scsq::util::json::parse(line));
      } catch (const ParseError& e) {
        std::fprintf(stderr, "metrics_diff: %s:%zu: %s\n", path.c_str(), lineno, e.what());
        std::exit(2);
      }
    }
    if (docs.empty()) {
      std::fprintf(stderr, "metrics_diff: %s: no JSON documents\n", path.c_str());
      std::exit(2);
    }
    return Value::make_array(std::move(docs));
  }
}

/// Execution-layout gauge families: engine.sim_lps.* (requested and
/// effective LP partition width), transport.frame_pool.* (shard
/// recycling counters, including the per-LP shard.* labels),
/// sim.queue.* (ladder-queue internals — rung spills and bottom resorts
/// are zero under SCSQ_EVENT_QUEUE=heap) and sim.coro.* (process-wide
/// frame-pool recycling, which accumulates across every run in the
/// process). These describe HOW the host drove a run, not WHAT the
/// simulation produced, and legitimately differ between runs at
/// different SCSQ_SIM_LPS / SCSQ_EVENT_QUEUE even though every
/// simulated result is byte-identical — so neither the --check floor
/// nor the diff regression gate applies to them.
bool is_layout_gauge(const std::string& path) {
  return path.find("engine.sim_lps.") != std::string::npos ||
         path.find("transport.frame_pool.") != std::string::npos ||
         path.find("sim.queue.") != std::string::npos ||
         path.find("sim.coro.") != std::string::npos;
}

/// Tallies from a --check walk over a baseline document.
struct CheckTally {
  int regressions = 0;  ///< numeric seed, new below the floor
  int inspected = 0;    ///< numeric seed, compared
  int skipped = 0;      ///< "seed": null — intentionally unbaselined
  int missing = 0;      ///< numeric "new" with no "seed" key at all
};

/// Recursively checks measurement objects (any object with a numeric
/// "new" member). A numeric "seed" gates a regression; an explicit
/// "seed": null opts the entry out; an *absent* seed key is a forgotten
/// baseline and is reported separately so CI can distinguish "record a
/// seed for this new benchmark" from "this value regressed".
void check_baseline(const Value& v, const std::string& path, double threshold,
                    CheckTally* tally) {
  if (v.is_object()) {
    const Value* seed = v.find("seed");
    const Value* fresh = v.find("new");
    if (fresh != nullptr && fresh->is_number()) {
      if (is_layout_gauge(path)) {
        ++tally->skipped;  // layout descriptor: no baseline expected
      } else if (seed == nullptr) {
        std::printf("MISSING-BASELINE %s: new=%g has no \"seed\" key (record one or mark "
                    "\"seed\": null)\n",
                    path.c_str(), fresh->as_number());
        ++tally->missing;
      } else if (seed->is_number()) {
        ++tally->inspected;
        const double floor = seed->as_number() * (1.0 - threshold);
        if (fresh->as_number() < floor) {
          std::printf("REGRESSION %s: new=%g < seed=%g - %.0f%% (floor %g)\n",
                      path.c_str(), fresh->as_number(), seed->as_number(),
                      threshold * 100.0, floor);
          ++tally->regressions;
        }
      } else {
        ++tally->skipped;  // "seed": null (or non-numeric): intentional
      }
      return;  // a measurement leaf; don't recurse further
    }
    for (const auto& [key, member] : v.as_object()) {
      check_baseline(member, path.empty() ? key : path + "." + key, threshold, tally);
    }
  } else if (v.is_array()) {
    const auto& items = v.as_array();
    for (std::size_t i = 0; i < items.size(); ++i) {
      check_baseline(items[i], path + "[" + std::to_string(i) + "]", threshold, tally);
    }
  }
}

int run_check(const std::string& path, double threshold) {
  const Value doc = parse_file(path);
  CheckTally tally;
  check_baseline(doc, "", threshold, &tally);
  std::printf("%s: %d measurement(s) checked, %d regression(s), %d unbaselined, "
              "%d missing baseline(s) (threshold %.0f%%)\n",
              path.c_str(), tally.inspected, tally.regressions, tally.skipped,
              tally.missing, threshold * 100.0);
  if (tally.regressions > 0) return 1;
  return tally.missing > 0 ? 3 : 0;
}

int run_diff(const std::string& old_path, const std::string& new_path, double threshold,
             const std::string& filter, long top) {
  const auto old_leaves = scsq::util::json::numeric_leaves(parse_file(old_path));
  const auto new_leaves = scsq::util::json::numeric_leaves(parse_file(new_path));
  const auto matches = [&](const std::string& path) {
    return filter.empty() || path.find(filter) != std::string::npos;
  };

  struct Change {
    std::string path;
    double old_value;
    double new_value;
    double pct;
  };
  std::vector<Change> changed;
  int regressions = 0;
  std::size_t shared = 0;
  for (const auto& [path, old_value] : old_leaves) {
    if (!matches(path)) continue;
    auto it = new_leaves.find(path);
    if (it == new_leaves.end()) {
      std::printf("ONLY-OLD   %s = %g\n", path.c_str(), old_value);
      continue;
    }
    ++shared;
    const double new_value = it->second;
    if (new_value == old_value) continue;
    if (is_layout_gauge(path)) {
      std::printf("LAYOUT     %s: %g -> %g (differs with the LP layout; not gated)\n",
                  path.c_str(), old_value, new_value);
      continue;
    }
    const double floor = old_value * (1.0 - threshold);
    const bool regressed = old_value > 0.0 && new_value < floor;
    const double pct =
        old_value != 0.0 ? (new_value - old_value) / old_value * 100.0 : 0.0;
    if (regressed) {
      std::printf("REGRESSION %s: %g -> %g (%+.1f%%)\n", path.c_str(), old_value,
                  new_value, pct);
      ++regressions;
    } else {
      changed.push_back({path, old_value, new_value, pct});
    }
  }
  if (top >= 0 && changed.size() > static_cast<std::size_t>(top)) {
    std::stable_sort(changed.begin(), changed.end(), [](const Change& a, const Change& b) {
      return std::fabs(a.pct) > std::fabs(b.pct);
    });
    std::printf("(%zu changed leaf value(s), showing top %ld by |%%|)\n", changed.size(),
                top);
    changed.resize(static_cast<std::size_t>(top));
  }
  for (const auto& c : changed) {
    std::printf("CHANGED    %s: %g -> %g (%+.1f%%)\n", c.path.c_str(), c.old_value,
                c.new_value, c.pct);
  }
  for (const auto& [path, new_value] : new_leaves) {
    if (!matches(path)) continue;
    if (!old_leaves.contains(path)) std::printf("ONLY-NEW   %s = %g\n", path.c_str(), new_value);
  }
  std::printf("%zu shared leaf value(s), %d regression(s) (threshold %.0f%%)\n", shared,
              regressions, threshold * 100.0);
  return regressions > 0 ? 1 : 0;
}

// --- EXPLAIN ANALYZE profile checks ---

/// A profile object: numeric "elapsed_s" plus an "attribution" object
/// with numeric "attributed_total_s" (the obs::Profile JSON shape, found
/// standalone or nested inside SCSQ_PROFILE_OUT records).
bool is_profile(const Value& v) {
  if (!v.is_object()) return false;
  const Value* elapsed = v.find("elapsed_s");
  const Value* attribution = v.find("attribution");
  return elapsed != nullptr && elapsed->is_number() && attribution != nullptr &&
         attribution->is_object() && attribution->find("attributed_total_s") != nullptr &&
         attribution->find("attributed_total_s")->is_number();
}

void collect_profiles(const Value& v, std::vector<const Value*>* out) {
  if (v.is_object()) {
    if (is_profile(v)) {
      out->push_back(&v);
      return;
    }
    for (const auto& [key, member] : v.as_object()) collect_profiles(member, out);
  } else if (v.is_array()) {
    for (const auto& item : v.as_array()) collect_profiles(item, out);
  }
}

int run_check_profile(const std::string& path) {
  const Value doc = parse_file(path);
  std::vector<const Value*> profiles;
  collect_profiles(doc, &profiles);
  if (profiles.empty()) {
    std::fprintf(stderr, "metrics_diff: %s: no profiles found\n", path.c_str());
    return 2;
  }
  constexpr double kTolerance = 1e-3;  // the ±0.1% attribution invariant
  int violations = 0;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const double elapsed = profiles[i]->find("elapsed_s")->as_number();
    const double attributed =
        profiles[i]->find("attribution")->find("attributed_total_s")->as_number();
    const double scale = std::max(std::fabs(elapsed), 1e-12);
    if (std::fabs(attributed - elapsed) / scale > kTolerance) {
      std::printf("VIOLATION profile[%zu]: attributed %.9g s != elapsed %.9g s (%.3f%% off)\n",
                  i, attributed, elapsed,
                  std::fabs(attributed - elapsed) / scale * 100.0);
      ++violations;
    }
  }
  std::printf("%s: %zu profile(s) checked, %d attribution violation(s)\n", path.c_str(),
              profiles.size(), violations);
  return violations > 0 ? 1 : 0;
}

/// cause -> share map from a profile's attribution.slices.
std::map<std::string, double> shares_of(const Value& profile) {
  std::map<std::string, double> shares;
  const Value* attribution = profile.find("attribution");
  const Value* slices = attribution != nullptr ? attribution->find("slices") : nullptr;
  if (slices == nullptr || !slices->is_array()) return shares;
  for (const auto& slice : slices->as_array()) {
    if (!slice.is_object()) continue;
    const Value* cause = slice.find("cause");
    const Value* share = slice.find("share");
    if (cause != nullptr && cause->is_string() && share != nullptr && share->is_number()) {
      shares[cause->as_string()] = share->as_number();
    }
  }
  return shares;
}

int run_profile_diff(const std::string& old_path, const std::string& new_path,
                     double threshold) {
  const Value old_doc = parse_file(old_path);
  const Value new_doc = parse_file(new_path);
  std::vector<const Value*> old_profiles, new_profiles;
  collect_profiles(old_doc, &old_profiles);
  collect_profiles(new_doc, &new_profiles);
  if (old_profiles.empty() || new_profiles.empty()) {
    std::fprintf(stderr, "metrics_diff: no profiles to compare (%zu old, %zu new)\n",
                 old_profiles.size(), new_profiles.size());
    return 2;
  }
  const std::size_t pairs = std::min(old_profiles.size(), new_profiles.size());
  if (old_profiles.size() != new_profiles.size()) {
    std::printf("(profile counts differ: %zu old vs %zu new; comparing first %zu)\n",
                old_profiles.size(), new_profiles.size(), pairs);
  }
  int regressions = 0;
  for (std::size_t i = 0; i < pairs; ++i) {
    const auto old_shares = shares_of(*old_profiles[i]);
    const auto new_shares = shares_of(*new_profiles[i]);
    for (const auto& [cause, new_share] : new_shares) {
      const auto it = old_shares.find(cause);
      if (it == old_shares.end()) {
        // A cause the old profile never attributed at all — a new cost
        // category (e.g. a subsystem added by the change), not a share
        // regression of an existing one. Informational only.
        if (new_share > 0.01) {
          std::printf("NEW-CAUSE  profile[%zu] %s: share %.1f%% (absent in old)\n", i,
                      cause.c_str(), new_share * 100.0);
        }
        continue;
      }
      const double old_share = it->second;
      const double delta = new_share - old_share;
      if (delta > threshold) {
        std::printf("REGRESSION profile[%zu] %s: share %.1f%% -> %.1f%% (+%.1f points)\n",
                    i, cause.c_str(), old_share * 100.0, new_share * 100.0, delta * 100.0);
        ++regressions;
      } else if (std::fabs(delta) > 0.01) {
        std::printf("CHANGED    profile[%zu] %s: share %.1f%% -> %.1f%%\n", i,
                    cause.c_str(), old_share * 100.0, new_share * 100.0);
      }
    }
  }
  std::printf("%zu profile pair(s) compared, %d attribution regression(s) (threshold %.0f points)\n",
              pairs, regressions, threshold * 100.0);
  return regressions > 0 ? 1 : 0;
}

// --- windowed time-series analysis (SCSQ_TIMESERIES_OUT) ---

/// One sampler window reduced to the primary series: the sum of the
/// rates of every counter whose key contains the --series substring.
struct SeriesWindow {
  double t_start = 0.0;
  double t_end = 0.0;
  double rate = 0.0;
};

/// A sampler window record: the obs::Sampler JSONL shape, with or
/// without the "point" tag the bench harness splices in front.
bool is_window_record(const Value& v) {
  if (!v.is_object()) return false;
  const Value* t0 = v.find("t_start");
  const Value* t1 = v.find("t_end");
  const Value* counters = v.find("counters");
  return t0 != nullptr && t0->is_number() && t1 != nullptr && t1->is_number() &&
         counters != nullptr && counters->is_object();
}

/// Parses a time-series file into per-point window lists, validating
/// the sampler invariants along the way: positive-length windows,
/// contiguous coverage, finite non-negative deltas and rates. Returns
/// the number of violations printed.
int load_timeseries(const std::string& path, const std::string& series,
                    std::map<long, std::vector<SeriesWindow>>* points) {
  const Value doc = parse_file(path);
  std::vector<const Value*> records;
  if (doc.is_array()) {
    for (const auto& item : doc.as_array()) {
      if (is_window_record(item)) records.push_back(&item);
    }
  } else if (is_window_record(doc)) {
    records.push_back(&doc);
  }
  int violations = 0;
  std::size_t n = 0;
  for (const Value* rec : records) {
    ++n;
    const Value* point = rec->find("point");
    const long p =
        point != nullptr && point->is_number() ? static_cast<long>(point->as_number()) : 0;
    SeriesWindow w;
    w.t_start = rec->find("t_start")->as_number();
    w.t_end = rec->find("t_end")->as_number();
    if (!(w.t_end > w.t_start)) {
      std::printf("VIOLATION %s window %zu: t_end %g <= t_start %g\n", path.c_str(), n,
                  w.t_end, w.t_start);
      ++violations;
    }
    for (const auto& [key, counter] : rec->find("counters")->as_object()) {
      if (!counter.is_object()) continue;
      const Value* delta = counter.find("delta");
      const Value* rate = counter.find("rate");
      const double d = delta != nullptr && delta->is_number() ? delta->as_number() : -1.0;
      const double r = rate != nullptr && rate->is_number() ? rate->as_number() : -1.0;
      if (d < 0.0 || !std::isfinite(r) || r < 0.0) {
        std::printf("VIOLATION %s window %zu: counter %s has bad delta/rate\n",
                    path.c_str(), n, key.c_str());
        ++violations;
        continue;
      }
      if (key.find(series) != std::string::npos) w.rate += r;
    }
    auto& windows = (*points)[p];
    if (!windows.empty()) {
      const double prev_end = windows.back().t_end;
      const double tol = 1e-9 * std::max(1.0, std::fabs(prev_end));
      if (std::fabs(w.t_start - prev_end) > tol) {
        std::printf("VIOLATION %s window %zu (point %ld): t_start %.17g does not "
                    "continue previous t_end %.17g\n",
                    path.c_str(), n, p, w.t_start, prev_end);
        ++violations;
      }
    }
    windows.push_back(w);
  }
  return violations;
}

/// Steady-state summary of one point's windows: the windows whose
/// primary-series rate sits within ±25% of the median nonzero rate.
struct SteadyState {
  double ramp_s = 0.0;        ///< first window start -> first steady window start
  double steady_mean = 0.0;   ///< mean rate over steady windows
  double peak = 0.0;          ///< max window rate
  double p99 = 0.0;           ///< 99th-percentile window rate
  std::size_t steady_windows = 0;
  std::size_t windows = 0;
};

SteadyState analyze_point(const std::vector<SeriesWindow>& windows) {
  SteadyState s;
  s.windows = windows.size();
  if (windows.empty()) return s;
  std::vector<double> nonzero;
  for (const auto& w : windows) {
    s.peak = std::max(s.peak, w.rate);
    if (w.rate > 0.0) nonzero.push_back(w.rate);
  }
  std::vector<double> rates;
  rates.reserve(windows.size());
  for (const auto& w : windows) rates.push_back(w.rate);
  std::sort(rates.begin(), rates.end());
  s.p99 = rates[std::min(rates.size() - 1,
                         static_cast<std::size_t>(0.99 * static_cast<double>(rates.size())))];
  if (nonzero.empty()) return s;
  std::sort(nonzero.begin(), nonzero.end());
  const double median = nonzero[nonzero.size() / 2];
  bool first_steady_seen = false;
  double steady_sum = 0.0;
  for (const auto& w : windows) {
    if (std::fabs(w.rate - median) <= 0.25 * median) {
      if (!first_steady_seen) {
        first_steady_seen = true;
        s.ramp_s = w.t_start - windows.front().t_start;
      }
      steady_sum += w.rate;
      ++s.steady_windows;
    }
  }
  if (s.steady_windows > 0) steady_sum /= static_cast<double>(s.steady_windows);
  s.steady_mean = steady_sum;
  return s;
}

int run_timeseries_check(const std::string& path, const std::string& series) {
  std::map<long, std::vector<SeriesWindow>> points;
  const int violations = load_timeseries(path, series, &points);
  if (points.empty()) {
    std::fprintf(stderr, "metrics_diff: %s: no sampler windows found\n", path.c_str());
    return 2;
  }
  for (const auto& [p, windows] : points) {
    const SteadyState s = analyze_point(windows);
    std::printf("point %ld: %zu window(s), %zu steady, ramp %.6g s, "
                "steady mean %.6g /s, peak %.6g /s, p99 window %.6g /s [series '%s']\n",
                p, s.windows, s.steady_windows, s.ramp_s, s.steady_mean, s.peak, s.p99,
                series.c_str());
  }
  std::printf("%s: %zu point(s), %d violation(s)\n", path.c_str(), points.size(),
              violations);
  return violations > 0 ? 1 : 0;
}

int run_timeseries_diff(const std::string& old_path, const std::string& new_path,
                        const std::string& series, double threshold) {
  std::map<long, std::vector<SeriesWindow>> old_points, new_points;
  const int old_violations = load_timeseries(old_path, series, &old_points);
  const int new_violations = load_timeseries(new_path, series, &new_points);
  if (old_points.empty() || new_points.empty()) {
    std::fprintf(stderr, "metrics_diff: no sampler windows to compare (%zu old, %zu new)\n",
                 old_points.size(), new_points.size());
    return 2;
  }
  int regressions = 0;
  std::size_t pairs = 0;
  for (const auto& [p, old_windows] : old_points) {
    const auto it = new_points.find(p);
    if (it == new_points.end()) {
      std::printf("ONLY-OLD   point %ld (%zu windows)\n", p, old_windows.size());
      continue;
    }
    ++pairs;
    const SteadyState old_s = analyze_point(old_windows);
    const SteadyState new_s = analyze_point(it->second);
    if (old_s.steady_mean > 0.0 &&
        new_s.steady_mean < old_s.steady_mean * (1.0 - threshold)) {
      std::printf("REGRESSION point %ld: steady mean %.6g -> %.6g /s (%+.1f%%)\n", p,
                  old_s.steady_mean, new_s.steady_mean,
                  (new_s.steady_mean - old_s.steady_mean) / old_s.steady_mean * 100.0);
      ++regressions;
    } else if (new_s.steady_mean != old_s.steady_mean) {
      std::printf("CHANGED    point %ld: steady mean %.6g -> %.6g /s\n", p,
                  old_s.steady_mean, new_s.steady_mean);
    }
  }
  for (const auto& [p, new_windows] : new_points) {
    if (!old_points.contains(p)) {
      std::printf("ONLY-NEW   point %ld (%zu windows)\n", p, new_windows.size());
    }
  }
  std::printf("%zu point pair(s) compared, %d steady-rate regression(s) "
              "(threshold %.0f%%, series '%s')\n",
              pairs, regressions, threshold * 100.0, series.c_str());
  if (regressions > 0 || old_violations > 0 || new_violations > 0) return 1;
  return 0;
}

// --- monitor-alert stream validation (SCSQ_MONITOR_OUT) ---

/// A monitor-alert record: the obs::write_alerts_jsonl shape.
bool is_alert_record(const Value& v) {
  return v.is_object() && v.find("alert") != nullptr && v.find("monitor") != nullptr;
}

int run_alerts(const std::string& path) {
  const Value doc = parse_file(path);
  std::vector<const Value*> records;
  if (doc.is_array()) {
    for (const auto& item : doc.as_array()) {
      if (is_alert_record(item)) records.push_back(&item);
    }
  } else if (is_alert_record(doc)) {
    records.push_back(&doc);
  }
  if (records.empty()) {
    std::fprintf(stderr, "metrics_diff: %s: no monitor alerts found\n", path.c_str());
    return 2;
  }

  struct MonitorSummary {
    std::size_t alerts = 0;
    std::set<long> windows;
    double first_t_end = 0.0;
    double last_t_end = 0.0;
    std::string query;
  };
  std::map<std::string, MonitorSummary> monitors;
  int violations = 0;
  std::size_t n = 0;
  for (const Value* rec : records) {
    ++n;
    const Value* monitor = rec->find("monitor");
    const Value* window = rec->find("window");
    const Value* t_start = rec->find("t_start");
    const Value* t_end = rec->find("t_end");
    const Value* row = rec->find("row");
    const Value* value = rec->find("value");
    const Value* query = rec->find("query");
    if (monitor == nullptr || !monitor->is_string() || window == nullptr ||
        !window->is_number() || row == nullptr || !row->is_number() ||
        query == nullptr || !query->is_string() || value == nullptr) {
      std::printf("VIOLATION %s alert %zu: missing/mistyped member "
                  "(monitor/window/row/value/query)\n",
                  path.c_str(), n);
      ++violations;
      continue;
    }
    if (t_start == nullptr || !t_start->is_number() || t_end == nullptr ||
        !t_end->is_number() || !(t_start->as_number() < t_end->as_number())) {
      std::printf("VIOLATION %s alert %zu: bad window bounds (t_start must be < t_end)\n",
                  path.c_str(), n);
      ++violations;
      continue;
    }
    auto& s = monitors[monitor->as_string()];
    if (s.alerts == 0) {
      s.first_t_end = t_end->as_number();
      s.query = query->as_string();
    }
    s.last_t_end = t_end->as_number();
    ++s.alerts;
    s.windows.insert(static_cast<long>(window->as_number()));
  }
  for (const auto& [name, s] : monitors) {
    std::printf("monitor %s: %zu alert(s) over %zu window(s), t_end %.6g..%.6g s: %s\n",
                name.c_str(), s.alerts, s.windows.size(), s.first_t_end, s.last_t_end,
                s.query.c_str());
  }
  std::printf("%s: %zu alert(s), %zu monitor(s), %d violation(s)\n", path.c_str(),
              records.size(), monitors.size(), violations);
  return violations > 0 ? 1 : 0;
}

void print_usage(std::FILE* to) {
  std::fprintf(to,
               "usage: metrics_diff [--threshold=FRACTION] --check BASELINE.json\n"
               "       metrics_diff [--threshold=FRACTION] [--filter=SUB] [--top=N] "
               "OLD.json NEW.json\n"
               "       metrics_diff --check-profile PROFILE.json\n"
               "       metrics_diff [--threshold=FRACTION] --profile-diff OLD.json NEW.json\n"
               "       metrics_diff [--series=SUB] --timeseries SERIES.jsonl\n"
               "       metrics_diff [--threshold=FRACTION] [--series=SUB] --timeseries "
               "OLD.jsonl NEW.jsonl\n"
               "       metrics_diff --alerts ALERTS.jsonl\n"
               "\n"
               "  --threshold=F   regression tolerance, 0 <= F < 1 (default 0.2).\n"
               "                  diff/check: flag drops below old*(1-F);\n"
               "                  profile-diff: flag share growth above F (absolute).\n"
               "  --filter=SUB    diff mode: only leaf paths containing SUB\n"
               "  --top=N         diff mode: show the N largest CHANGED lines by |%%|\n"
               "                  (REGRESSION and ONLY-* lines always print)\n"
               "  --check-profile validate EXPLAIN ANALYZE attribution sums\n"
               "  --profile-diff  compare per-cause attribution shares by position\n"
               "  --timeseries    analyze a sampler time series (SCSQ_TIMESERIES_OUT):\n"
               "                  validate window invariants and report ramp time,\n"
               "                  steady-state mean, peak and p99 window rate per point.\n"
               "                  With two files, compare steady-state rates and flag\n"
               "                  drops below old*(1-threshold).\n"
               "  --series=SUB    timeseries mode: counters whose key contains SUB form\n"
               "                  the primary rate (default 'transport.link.bytes')\n"
               "  --alerts        validate and summarize a monitor-alert stream\n"
               "                  (SCSQ_MONITOR_OUT JSONL)\n"
               "  --help          print this help and exit 0\n"
               "\n"
               "exit codes:\n"
               "  0  no regressions / invariants hold\n"
               "  1  regression or attribution violation found\n"
               "  2  usage error, unreadable file, invalid JSON, or no\n"
               "     measurements/profiles found where some were required\n"
               "  3  --check: a measurement has no \"seed\" key (forgotten\n"
               "     baseline; record one or mark it \"seed\": null). Only\n"
               "     when no exit-1 regression also fired.\n");
}

[[noreturn]] void usage() {
  print_usage(stderr);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.2;
  bool check = false;
  bool check_profile = false;
  bool profile_diff = false;
  bool timeseries = false;
  bool alerts = false;
  std::string series = "transport.link.bytes";
  std::string filter;
  long top = -1;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    } else if (arg.rfind("--threshold=", 0) == 0) {
      char* end = nullptr;
      threshold = std::strtod(arg.c_str() + std::strlen("--threshold="), &end);
      if (end == nullptr || *end != '\0' || threshold < 0.0 || threshold >= 1.0) {
        std::fprintf(stderr, "metrics_diff: bad threshold '%s'\n", arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--filter=", 0) == 0) {
      filter = arg.substr(std::strlen("--filter="));
    } else if (arg == "--filter" && i + 1 < argc) {
      filter = argv[++i];
    } else if (arg.rfind("--top=", 0) == 0) {
      char* end = nullptr;
      top = std::strtol(arg.c_str() + std::strlen("--top="), &end, 10);
      if (end == nullptr || *end != '\0' || top < 0) {
        std::fprintf(stderr, "metrics_diff: bad top '%s'\n", arg.c_str());
        return 2;
      }
    } else if (arg == "--top" && i + 1 < argc) {
      char* end = nullptr;
      top = std::strtol(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || top < 0) {
        std::fprintf(stderr, "metrics_diff: bad top '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg.rfind("--series=", 0) == 0) {
      series = arg.substr(std::strlen("--series="));
    } else if (arg == "--series" && i + 1 < argc) {
      series = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--check-profile") {
      check_profile = true;
    } else if (arg == "--profile-diff") {
      profile_diff = true;
    } else if (arg == "--timeseries") {
      timeseries = true;
    } else if (arg == "--alerts") {
      alerts = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else {
      files.push_back(arg);
    }
  }
  if (check + check_profile + profile_diff + timeseries + alerts > 1) usage();
  if (alerts && files.size() == 1) return run_alerts(files[0]);
  if (check && files.size() == 1) return run_check(files[0], threshold);
  if (check_profile && files.size() == 1) return run_check_profile(files[0]);
  if (profile_diff && files.size() == 2) {
    return run_profile_diff(files[0], files[1], threshold);
  }
  if (timeseries && files.size() == 1) return run_timeseries_check(files[0], series);
  if (timeseries && files.size() == 2) {
    return run_timeseries_diff(files[0], files[1], series, threshold);
  }
  if (!check && !check_profile && !profile_diff && !timeseries && !alerts &&
      files.size() == 2) {
    return run_diff(files[0], files[1], threshold, filter, top);
  }
  usage();
}
