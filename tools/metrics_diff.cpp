// metrics_diff — compare metrics/bench JSON documents and flag
// performance regressions beyond a threshold.
//
// Modes:
//
//   metrics_diff [--threshold=0.2] --check BASELINE.json
//     Self-check of a committed baseline (BENCH_kernels.json style):
//     every object containing a numeric "new" member is a tracked
//     measurement; fail (exit 1) when new < seed*(1-threshold).
//     Also validates that the file parses as strict JSON. Three seed
//     states are distinguished:
//       * numeric "seed"  — compared against "new" (regression gate);
//       * "seed": null    — intentionally unbaselined (e.g. the metric
//                           did not exist before the change); skipped
//                           silently;
//       * no "seed" key   — a measurement whose baseline was forgotten:
//                           reported as MISSING-BASELINE and, when no
//                           real regression also fired, exits 3 so CI
//                           can tell "record a seed" apart from "value
//                           regressed".
//
//   metrics_diff [--threshold=0.2] [--filter=SUB] [--top=N] OLD.json NEW.json
//     Structural diff: every numeric leaf is flattened to a dotted path
//     (obs registry exports, bench JSONL records, bench baselines all
//     work) and matching paths are compared. Leaves present in only one
//     file are listed; a drop beyond the threshold at any shared path
//     fails (exit 1). Files holding JSON-lines (one document per line,
//     e.g. SCSQ_METRICS_OUT output) are wrapped into an array first.
//     --filter keeps only leaf paths containing SUB; --top caps the
//     CHANGED lines at the N largest relative changes (REGRESSION and
//     ONLY-* lines always print).
//
//   metrics_diff --check-profile PROFILE.json
//     Validates EXPLAIN ANALYZE output (SCSQ_PROFILE_OUT JSONL or a
//     single profile document): every profile's attribution must sum to
//     its elapsed time within 0.1% — the profiler's core invariant.
//     Exit 1 when violated, exit 2 when the file holds no profiles.
//
//   metrics_diff [--threshold=0.2] --profile-diff OLD.json NEW.json
//     Pairs profile records by position and compares per-cause
//     attribution shares; fail (exit 1) when any cause's share of
//     elapsed time grew by more than the threshold (absolute, e.g. 0.2
//     = 20 percentage points) — gating attribution regressions such as
//     packetization waste creeping up.
//
// Exit codes: 0 ok, 1 regression/violation found, 2 usage/parse error,
// 3 (--check only) measurement lacking a "seed" key with no regression.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace {

using scsq::util::json::ParseError;
using scsq::util::json::Value;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "metrics_diff: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Whole-document parse, falling back to JSON-lines (each non-empty line
/// one document, collected into an array).
Value parse_file(const std::string& path) {
  const std::string text = read_file(path);
  try {
    return scsq::util::json::parse(text);
  } catch (const ParseError&) {
    std::vector<Value> docs;
    std::istringstream lines(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(lines, line)) {
      ++lineno;
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      try {
        docs.push_back(scsq::util::json::parse(line));
      } catch (const ParseError& e) {
        std::fprintf(stderr, "metrics_diff: %s:%zu: %s\n", path.c_str(), lineno, e.what());
        std::exit(2);
      }
    }
    if (docs.empty()) {
      std::fprintf(stderr, "metrics_diff: %s: no JSON documents\n", path.c_str());
      std::exit(2);
    }
    return Value::make_array(std::move(docs));
  }
}

/// Tallies from a --check walk over a baseline document.
struct CheckTally {
  int regressions = 0;  ///< numeric seed, new below the floor
  int inspected = 0;    ///< numeric seed, compared
  int skipped = 0;      ///< "seed": null — intentionally unbaselined
  int missing = 0;      ///< numeric "new" with no "seed" key at all
};

/// Recursively checks measurement objects (any object with a numeric
/// "new" member). A numeric "seed" gates a regression; an explicit
/// "seed": null opts the entry out; an *absent* seed key is a forgotten
/// baseline and is reported separately so CI can distinguish "record a
/// seed for this new benchmark" from "this value regressed".
void check_baseline(const Value& v, const std::string& path, double threshold,
                    CheckTally* tally) {
  if (v.is_object()) {
    const Value* seed = v.find("seed");
    const Value* fresh = v.find("new");
    if (fresh != nullptr && fresh->is_number()) {
      if (seed == nullptr) {
        std::printf("MISSING-BASELINE %s: new=%g has no \"seed\" key (record one or mark "
                    "\"seed\": null)\n",
                    path.c_str(), fresh->as_number());
        ++tally->missing;
      } else if (seed->is_number()) {
        ++tally->inspected;
        const double floor = seed->as_number() * (1.0 - threshold);
        if (fresh->as_number() < floor) {
          std::printf("REGRESSION %s: new=%g < seed=%g - %.0f%% (floor %g)\n",
                      path.c_str(), fresh->as_number(), seed->as_number(),
                      threshold * 100.0, floor);
          ++tally->regressions;
        }
      } else {
        ++tally->skipped;  // "seed": null (or non-numeric): intentional
      }
      return;  // a measurement leaf; don't recurse further
    }
    for (const auto& [key, member] : v.as_object()) {
      check_baseline(member, path.empty() ? key : path + "." + key, threshold, tally);
    }
  } else if (v.is_array()) {
    const auto& items = v.as_array();
    for (std::size_t i = 0; i < items.size(); ++i) {
      check_baseline(items[i], path + "[" + std::to_string(i) + "]", threshold, tally);
    }
  }
}

int run_check(const std::string& path, double threshold) {
  const Value doc = parse_file(path);
  CheckTally tally;
  check_baseline(doc, "", threshold, &tally);
  std::printf("%s: %d measurement(s) checked, %d regression(s), %d unbaselined, "
              "%d missing baseline(s) (threshold %.0f%%)\n",
              path.c_str(), tally.inspected, tally.regressions, tally.skipped,
              tally.missing, threshold * 100.0);
  if (tally.regressions > 0) return 1;
  return tally.missing > 0 ? 3 : 0;
}

int run_diff(const std::string& old_path, const std::string& new_path, double threshold,
             const std::string& filter, long top) {
  const auto old_leaves = scsq::util::json::numeric_leaves(parse_file(old_path));
  const auto new_leaves = scsq::util::json::numeric_leaves(parse_file(new_path));
  const auto matches = [&](const std::string& path) {
    return filter.empty() || path.find(filter) != std::string::npos;
  };

  struct Change {
    std::string path;
    double old_value;
    double new_value;
    double pct;
  };
  std::vector<Change> changed;
  int regressions = 0;
  std::size_t shared = 0;
  for (const auto& [path, old_value] : old_leaves) {
    if (!matches(path)) continue;
    auto it = new_leaves.find(path);
    if (it == new_leaves.end()) {
      std::printf("ONLY-OLD   %s = %g\n", path.c_str(), old_value);
      continue;
    }
    ++shared;
    const double new_value = it->second;
    if (new_value == old_value) continue;
    const double floor = old_value * (1.0 - threshold);
    const bool regressed = old_value > 0.0 && new_value < floor;
    const double pct =
        old_value != 0.0 ? (new_value - old_value) / old_value * 100.0 : 0.0;
    if (regressed) {
      std::printf("REGRESSION %s: %g -> %g (%+.1f%%)\n", path.c_str(), old_value,
                  new_value, pct);
      ++regressions;
    } else {
      changed.push_back({path, old_value, new_value, pct});
    }
  }
  if (top >= 0 && changed.size() > static_cast<std::size_t>(top)) {
    std::stable_sort(changed.begin(), changed.end(), [](const Change& a, const Change& b) {
      return std::fabs(a.pct) > std::fabs(b.pct);
    });
    std::printf("(%zu changed leaf value(s), showing top %ld by |%%|)\n", changed.size(),
                top);
    changed.resize(static_cast<std::size_t>(top));
  }
  for (const auto& c : changed) {
    std::printf("CHANGED    %s: %g -> %g (%+.1f%%)\n", c.path.c_str(), c.old_value,
                c.new_value, c.pct);
  }
  for (const auto& [path, new_value] : new_leaves) {
    if (!matches(path)) continue;
    if (!old_leaves.contains(path)) std::printf("ONLY-NEW   %s = %g\n", path.c_str(), new_value);
  }
  std::printf("%zu shared leaf value(s), %d regression(s) (threshold %.0f%%)\n", shared,
              regressions, threshold * 100.0);
  return regressions > 0 ? 1 : 0;
}

// --- EXPLAIN ANALYZE profile checks ---

/// A profile object: numeric "elapsed_s" plus an "attribution" object
/// with numeric "attributed_total_s" (the obs::Profile JSON shape, found
/// standalone or nested inside SCSQ_PROFILE_OUT records).
bool is_profile(const Value& v) {
  if (!v.is_object()) return false;
  const Value* elapsed = v.find("elapsed_s");
  const Value* attribution = v.find("attribution");
  return elapsed != nullptr && elapsed->is_number() && attribution != nullptr &&
         attribution->is_object() && attribution->find("attributed_total_s") != nullptr &&
         attribution->find("attributed_total_s")->is_number();
}

void collect_profiles(const Value& v, std::vector<const Value*>* out) {
  if (v.is_object()) {
    if (is_profile(v)) {
      out->push_back(&v);
      return;
    }
    for (const auto& [key, member] : v.as_object()) collect_profiles(member, out);
  } else if (v.is_array()) {
    for (const auto& item : v.as_array()) collect_profiles(item, out);
  }
}

int run_check_profile(const std::string& path) {
  const Value doc = parse_file(path);
  std::vector<const Value*> profiles;
  collect_profiles(doc, &profiles);
  if (profiles.empty()) {
    std::fprintf(stderr, "metrics_diff: %s: no profiles found\n", path.c_str());
    return 2;
  }
  constexpr double kTolerance = 1e-3;  // the ±0.1% attribution invariant
  int violations = 0;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const double elapsed = profiles[i]->find("elapsed_s")->as_number();
    const double attributed =
        profiles[i]->find("attribution")->find("attributed_total_s")->as_number();
    const double scale = std::max(std::fabs(elapsed), 1e-12);
    if (std::fabs(attributed - elapsed) / scale > kTolerance) {
      std::printf("VIOLATION profile[%zu]: attributed %.9g s != elapsed %.9g s (%.3f%% off)\n",
                  i, attributed, elapsed,
                  std::fabs(attributed - elapsed) / scale * 100.0);
      ++violations;
    }
  }
  std::printf("%s: %zu profile(s) checked, %d attribution violation(s)\n", path.c_str(),
              profiles.size(), violations);
  return violations > 0 ? 1 : 0;
}

/// cause -> share map from a profile's attribution.slices.
std::map<std::string, double> shares_of(const Value& profile) {
  std::map<std::string, double> shares;
  const Value* attribution = profile.find("attribution");
  const Value* slices = attribution != nullptr ? attribution->find("slices") : nullptr;
  if (slices == nullptr || !slices->is_array()) return shares;
  for (const auto& slice : slices->as_array()) {
    if (!slice.is_object()) continue;
    const Value* cause = slice.find("cause");
    const Value* share = slice.find("share");
    if (cause != nullptr && cause->is_string() && share != nullptr && share->is_number()) {
      shares[cause->as_string()] = share->as_number();
    }
  }
  return shares;
}

int run_profile_diff(const std::string& old_path, const std::string& new_path,
                     double threshold) {
  const Value old_doc = parse_file(old_path);
  const Value new_doc = parse_file(new_path);
  std::vector<const Value*> old_profiles, new_profiles;
  collect_profiles(old_doc, &old_profiles);
  collect_profiles(new_doc, &new_profiles);
  if (old_profiles.empty() || new_profiles.empty()) {
    std::fprintf(stderr, "metrics_diff: no profiles to compare (%zu old, %zu new)\n",
                 old_profiles.size(), new_profiles.size());
    return 2;
  }
  const std::size_t pairs = std::min(old_profiles.size(), new_profiles.size());
  if (old_profiles.size() != new_profiles.size()) {
    std::printf("(profile counts differ: %zu old vs %zu new; comparing first %zu)\n",
                old_profiles.size(), new_profiles.size(), pairs);
  }
  int regressions = 0;
  for (std::size_t i = 0; i < pairs; ++i) {
    const auto old_shares = shares_of(*old_profiles[i]);
    const auto new_shares = shares_of(*new_profiles[i]);
    for (const auto& [cause, new_share] : new_shares) {
      const auto it = old_shares.find(cause);
      if (it == old_shares.end()) {
        // A cause the old profile never attributed at all — a new cost
        // category (e.g. a subsystem added by the change), not a share
        // regression of an existing one. Informational only.
        if (new_share > 0.01) {
          std::printf("NEW-CAUSE  profile[%zu] %s: share %.1f%% (absent in old)\n", i,
                      cause.c_str(), new_share * 100.0);
        }
        continue;
      }
      const double old_share = it->second;
      const double delta = new_share - old_share;
      if (delta > threshold) {
        std::printf("REGRESSION profile[%zu] %s: share %.1f%% -> %.1f%% (+%.1f points)\n",
                    i, cause.c_str(), old_share * 100.0, new_share * 100.0, delta * 100.0);
        ++regressions;
      } else if (std::fabs(delta) > 0.01) {
        std::printf("CHANGED    profile[%zu] %s: share %.1f%% -> %.1f%%\n", i,
                    cause.c_str(), old_share * 100.0, new_share * 100.0);
      }
    }
  }
  std::printf("%zu profile pair(s) compared, %d attribution regression(s) (threshold %.0f points)\n",
              pairs, regressions, threshold * 100.0);
  return regressions > 0 ? 1 : 0;
}

void print_usage(std::FILE* to) {
  std::fprintf(to,
               "usage: metrics_diff [--threshold=FRACTION] --check BASELINE.json\n"
               "       metrics_diff [--threshold=FRACTION] [--filter=SUB] [--top=N] "
               "OLD.json NEW.json\n"
               "       metrics_diff --check-profile PROFILE.json\n"
               "       metrics_diff [--threshold=FRACTION] --profile-diff OLD.json NEW.json\n"
               "\n"
               "  --threshold=F   regression tolerance, 0 <= F < 1 (default 0.2).\n"
               "                  diff/check: flag drops below old*(1-F);\n"
               "                  profile-diff: flag share growth above F (absolute).\n"
               "  --filter=SUB    diff mode: only leaf paths containing SUB\n"
               "  --top=N         diff mode: show the N largest CHANGED lines by |%%|\n"
               "                  (REGRESSION and ONLY-* lines always print)\n"
               "  --check-profile validate EXPLAIN ANALYZE attribution sums\n"
               "  --profile-diff  compare per-cause attribution shares by position\n"
               "  --help          print this help and exit 0\n"
               "\n"
               "exit codes:\n"
               "  0  no regressions / invariants hold\n"
               "  1  regression or attribution violation found\n"
               "  2  usage error, unreadable file, invalid JSON, or no\n"
               "     measurements/profiles found where some were required\n"
               "  3  --check: a measurement has no \"seed\" key (forgotten\n"
               "     baseline; record one or mark it \"seed\": null). Only\n"
               "     when no exit-1 regression also fired.\n");
}

[[noreturn]] void usage() {
  print_usage(stderr);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.2;
  bool check = false;
  bool check_profile = false;
  bool profile_diff = false;
  std::string filter;
  long top = -1;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    } else if (arg.rfind("--threshold=", 0) == 0) {
      char* end = nullptr;
      threshold = std::strtod(arg.c_str() + std::strlen("--threshold="), &end);
      if (end == nullptr || *end != '\0' || threshold < 0.0 || threshold >= 1.0) {
        std::fprintf(stderr, "metrics_diff: bad threshold '%s'\n", arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--filter=", 0) == 0) {
      filter = arg.substr(std::strlen("--filter="));
    } else if (arg == "--filter" && i + 1 < argc) {
      filter = argv[++i];
    } else if (arg.rfind("--top=", 0) == 0) {
      char* end = nullptr;
      top = std::strtol(arg.c_str() + std::strlen("--top="), &end, 10);
      if (end == nullptr || *end != '\0' || top < 0) {
        std::fprintf(stderr, "metrics_diff: bad top '%s'\n", arg.c_str());
        return 2;
      }
    } else if (arg == "--top" && i + 1 < argc) {
      char* end = nullptr;
      top = std::strtol(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || top < 0) {
        std::fprintf(stderr, "metrics_diff: bad top '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--check-profile") {
      check_profile = true;
    } else if (arg == "--profile-diff") {
      profile_diff = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else {
      files.push_back(arg);
    }
  }
  if (check + check_profile + profile_diff > 1) usage();
  if (check && files.size() == 1) return run_check(files[0], threshold);
  if (check_profile && files.size() == 1) return run_check_profile(files[0]);
  if (profile_diff && files.size() == 2) {
    return run_profile_diff(files[0], files[1], threshold);
  }
  if (!check && !check_profile && !profile_diff && files.size() == 2) {
    return run_diff(files[0], files[1], threshold, filter, top);
  }
  usage();
}
