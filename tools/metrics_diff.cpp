// metrics_diff — compare metrics/bench JSON documents and flag
// performance regressions beyond a threshold.
//
// Two modes:
//
//   metrics_diff [--threshold=0.2] --check BASELINE.json
//     Self-check of a committed baseline (BENCH_kernels.json style):
//     every object containing numeric "seed" and "new" members is a
//     tracked measurement; fail (exit 1) when new < seed*(1-threshold).
//     Also validates that the file parses as strict JSON. Objects with
//     "seed": null (no pre-optimization measurement) are skipped.
//
//   metrics_diff [--threshold=0.2] OLD.json NEW.json
//     Structural diff: every numeric leaf is flattened to a dotted path
//     (obs registry exports, bench JSONL records, bench baselines all
//     work) and matching paths are compared. Leaves present in only one
//     file are listed; a drop beyond the threshold at any shared path
//     fails (exit 1). Files holding JSON-lines (one document per line,
//     e.g. SCSQ_METRICS_OUT output) are wrapped into an array first.
//
// Exit codes: 0 ok, 1 regression found, 2 usage/parse error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace {

using scsq::util::json::ParseError;
using scsq::util::json::Value;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "metrics_diff: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Whole-document parse, falling back to JSON-lines (each non-empty line
/// one document, collected into an array).
Value parse_file(const std::string& path) {
  const std::string text = read_file(path);
  try {
    return scsq::util::json::parse(text);
  } catch (const ParseError&) {
    std::vector<Value> docs;
    std::istringstream lines(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(lines, line)) {
      ++lineno;
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      try {
        docs.push_back(scsq::util::json::parse(line));
      } catch (const ParseError& e) {
        std::fprintf(stderr, "metrics_diff: %s:%zu: %s\n", path.c_str(), lineno, e.what());
        std::exit(2);
      }
    }
    if (docs.empty()) {
      std::fprintf(stderr, "metrics_diff: %s: no JSON documents\n", path.c_str());
      std::exit(2);
    }
    return Value::make_array(std::move(docs));
  }
}

/// Recursively checks "seed"/"new" measurement objects; returns the
/// number of regressions found and counts the measurements inspected.
int check_baseline(const Value& v, const std::string& path, double threshold,
                   int* inspected) {
  int regressions = 0;
  if (v.is_object()) {
    const Value* seed = v.find("seed");
    const Value* fresh = v.find("new");
    if (seed != nullptr && fresh != nullptr && fresh->is_number()) {
      if (seed->is_number()) {
        ++*inspected;
        const double floor = seed->as_number() * (1.0 - threshold);
        if (fresh->as_number() < floor) {
          std::printf("REGRESSION %s: new=%g < seed=%g - %.0f%% (floor %g)\n",
                      path.c_str(), fresh->as_number(), seed->as_number(),
                      threshold * 100.0, floor);
          ++regressions;
        }
      }
      return regressions;  // a measurement leaf; don't recurse further
    }
    for (const auto& [key, member] : v.as_object()) {
      regressions +=
          check_baseline(member, path.empty() ? key : path + "." + key, threshold, inspected);
    }
  } else if (v.is_array()) {
    const auto& items = v.as_array();
    for (std::size_t i = 0; i < items.size(); ++i) {
      regressions += check_baseline(items[i], path + "[" + std::to_string(i) + "]",
                                    threshold, inspected);
    }
  }
  return regressions;
}

int run_check(const std::string& path, double threshold) {
  const Value doc = parse_file(path);
  int inspected = 0;
  const int regressions = check_baseline(doc, "", threshold, &inspected);
  std::printf("%s: %d measurement(s) checked, %d regression(s) (threshold %.0f%%)\n",
              path.c_str(), inspected, regressions, threshold * 100.0);
  return regressions > 0 ? 1 : 0;
}

int run_diff(const std::string& old_path, const std::string& new_path, double threshold) {
  const auto old_leaves = scsq::util::json::numeric_leaves(parse_file(old_path));
  const auto new_leaves = scsq::util::json::numeric_leaves(parse_file(new_path));

  int regressions = 0;
  std::size_t shared = 0;
  for (const auto& [path, old_value] : old_leaves) {
    auto it = new_leaves.find(path);
    if (it == new_leaves.end()) {
      std::printf("ONLY-OLD   %s = %g\n", path.c_str(), old_value);
      continue;
    }
    ++shared;
    const double new_value = it->second;
    if (new_value == old_value) continue;
    const double floor = old_value * (1.0 - threshold);
    const bool regressed = old_value > 0.0 && new_value < floor;
    const double pct =
        old_value != 0.0 ? (new_value - old_value) / old_value * 100.0 : 0.0;
    std::printf("%s %s: %g -> %g (%+.1f%%)\n", regressed ? "REGRESSION" : "CHANGED   ",
                path.c_str(), old_value, new_value, pct);
    if (regressed) ++regressions;
  }
  for (const auto& [path, new_value] : new_leaves) {
    if (!old_leaves.contains(path)) std::printf("ONLY-NEW   %s = %g\n", path.c_str(), new_value);
  }
  std::printf("%zu shared leaf value(s), %d regression(s) (threshold %.0f%%)\n", shared,
              regressions, threshold * 100.0);
  return regressions > 0 ? 1 : 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: metrics_diff [--threshold=FRACTION] --check BASELINE.json\n"
               "       metrics_diff [--threshold=FRACTION] OLD.json NEW.json\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.2;
  bool check = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threshold=", 0) == 0) {
      char* end = nullptr;
      threshold = std::strtod(arg.c_str() + std::strlen("--threshold="), &end);
      if (end == nullptr || *end != '\0' || threshold < 0.0 || threshold >= 1.0) {
        std::fprintf(stderr, "metrics_diff: bad threshold '%s'\n", arg.c_str());
        return 2;
      }
    } else if (arg == "--check") {
      check = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else {
      files.push_back(arg);
    }
  }
  if (check && files.size() == 1) return run_check(files[0], threshold);
  if (!check && files.size() == 2) return run_diff(files[0], files[1], threshold);
  usage();
}
