// scsql_shell — run SCSQL scripts against a simulated LOFAR environment.
//
//   $ ./tools/scsql_shell query.scsql          # run a script file
//   $ echo "select 1+2;" | ./tools/scsql_shell # or read stdin
//
// Options (environment variables, mirroring ExecOptions):
//   SCSQ_BUFFER_BYTES   stream buffer size (default 65536)
//   SCSQ_SEND_BUFFERS   1 = single, 2 = double buffering (default 2)
//   SCSQ_MAX_RESULTS    stop condition (default unlimited)
//   SCSQ_SMART_SELECT   1 = topology-aware node selection
//   SCSQ_VERBOSE        1 = per-RP monitoring dump after each query
//   SCSQ_TRACE          path: write a Chrome-tracing JSON of the run
//                       (open in chrome://tracing or Perfetto)
//
// Each query statement prints its result stream, the simulated elapsed
// time, and the total stream volume — the same numbers the paper's
// measurement methodology uses.
//
// Shell commands (a line of their own in the script/stdin):
//   \metrics [filter] [> file]
//              print the metrics-registry snapshot (Prometheus text
//              format) and the per-RP table of the last query. With a
//              filter argument only series whose name{labels} key
//              contains it are shown; with "> file" the Prometheus text
//              goes to the file instead of stdout (a summary line is
//              printed).
//   \explain analyze <query>;
//              run the query (which may span several lines, up to the
//              terminating ';') and print the EXPLAIN ANALYZE report:
//              the measured dataflow plan tree, the critical path, and
//              the per-cause time attribution.
//   \profile   print the EXPLAIN ANALYZE report of the last query.
//   \watch <interval_s> [series]
//              arm the sim-time telemetry sampler: subsequent queries
//              print one rate line per window (windows of <interval_s>
//              simulated seconds) for counters whose key contains
//              `series` (default transport.link.bytes). Lines are
//              flushed as each window closes, so piping through
//              `tail -f` (or watching a redirected file) shows the run
//              live; Ctrl-C ends the shell cleanly mid-run. "\watch off"
//              disarms. Sampling is observational: query results and
//              timings are unchanged (DESIGN.md §5.7).
//   \monitor <query>
//              register a continuous introspection query (DESIGN.md
//              §5.8) over system.metrics / system.gauges / system.rates
//              / system.lp; it runs at every sampler window boundary of
//              subsequent statements, and matched rows are reported
//              after each statement (and appended to SCSQ_MONITOR_OUT
//              as JSONL when set). Requires an armed sampler (\watch or
//              SCSQ_SAMPLE_INTERVAL) to ever fire. Monitors are
//              zero-perturbation: results and timings are byte-identical
//              with monitors on or off.
//   \monitors  list registered monitors with their last-statement alert
//              counts.
//   \unmonitor [name]
//              remove one monitor by name, or all monitors.
//
// Environment: SCSQ_SAMPLE_INTERVAL pre-arms the sampler, SCSQ_MONITOR
// pre-registers a monitor query, SCSQ_MONITOR_OUT is the alert JSONL
// side channel.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include <unistd.h>

#include "core/scsq.hpp"
#include "sim/trace.hpp"
#include "util/bytes.hpp"

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v ? std::strtoull(v, nullptr, 10) : fallback;
}

// Ctrl-C mid-run: emit a newline so a partial \watch line does not run
// into the prompt, then exit with the conventional 128+SIGINT status.
// Only async-signal-safe calls here — live-watch lines are flushed per
// window, so _exit() loses at most the line being built.
void on_sigint(int) {
  const char msg[] = "\n-- interrupted\n";
  ::write(STDOUT_FILENO, msg, sizeof(msg) - 1);
  ::_exit(130);
}

void print_rp_table(const scsq::exec::RunReport& report) {
  for (const auto& rp : report.rps) {
    std::printf("   rp#%-3llu %-6s out=%-8llu tx=%-12llu rx=%-12llu stall=%.6fs %s\n",
                static_cast<unsigned long long>(rp.id), rp.loc.to_string().c_str(),
                static_cast<unsigned long long>(rp.elements_out),
                static_cast<unsigned long long>(rp.bytes_sent),
                static_cast<unsigned long long>(rp.bytes_received), rp.stall_s,
                rp.query.c_str());
  }
}

void print_metrics(scsq::Scsq& scsq, const scsq::exec::RunReport* last_report,
                   const std::string& filter, const std::string& out_path) {
  scsq.machine().publish_metrics();
  auto& registry = scsq.machine().metrics();
  std::ostringstream os;
  const std::size_t written = registry.write_prometheus(os, filter);
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::printf("-- cannot open %s\n", out_path.c_str());
      return;
    }
    out << os.str();
    std::printf("-- %zu series written to %s\n", written, out_path.c_str());
    return;
  }
  if (filter.empty()) {
    std::printf("-- metrics snapshot (%zu series)\n", registry.size());
  } else {
    std::printf("-- metrics snapshot (%zu of %zu series match '%s')\n", written,
                registry.size(), filter.c_str());
  }
  std::fputs(os.str().c_str(), stdout);
  if (last_report != nullptr && !last_report->rps.empty()) {
    std::printf("-- per-RP stats of the last query\n");
    print_rp_table(*last_report);
  }
}

void print_profile(scsq::Scsq& scsq, const scsq::exec::RunReport* last_report) {
  if (last_report == nullptr || last_report->rp_count == 0) {
    std::printf("-- no query to profile\n");
    return;
  }
  std::ostringstream os;
  scsq.engine().profile(*last_report).render_text(os);
  std::fputs(os.str().c_str(), stdout);
}

// One live \watch line per sampler window. Called from the engine's
// window listener as each window closes (inside the zero-duration
// sample callback — host-side printing only, the simulation clock is
// untouched) and flushed immediately, so redirected output can be
// followed with `tail -f` while the statement runs. `series` selects
// the counters summed into the printed rate (substring of the metric
// key, e.g. "transport.link.bytes" or "sqep.items").
void print_watch_window(const scsq::obs::Sampler::Window& w, const std::string& series) {
  const double rate = w.counter_rate_sum(series);
  if (series.find("bytes") != std::string::npos) {
    std::printf("   [%10.6f, %10.6f) %12s/s\n", w.t_start, w.t_end,
                scsq::util::format_bytes(static_cast<std::uint64_t>(rate)).c_str());
  } else {
    std::printf("   [%10.6f, %10.6f) %12.6g /s\n", w.t_start, w.t_end, rate);
  }
  std::fflush(stdout);
}

void print_watch_summary(scsq::Scsq& scsq, const std::string& series) {
  const auto& windows = scsq.engine().sampler().windows();
  if (windows.empty()) {
    std::printf("-- watch: no sampler windows (query shorter than the interval?)\n");
    return;
  }
  std::printf("-- watch: %zu window(s), series '%s'\n", windows.size(), series.c_str());
}

// Post-statement monitor summary: per-monitor alert counts for the
// statement that just ran (the alert rows themselves go to
// SCSQ_MONITOR_OUT).
void print_monitor_summary(scsq::Scsq& scsq) {
  const auto monitors = scsq.engine().monitors();
  if (monitors.empty()) return;
  std::size_t total = 0;
  for (const auto& m : monitors) total += m.alerts;
  std::printf("-- monitors: %zu alert(s)", total);
  for (const auto& m : monitors) {
    std::printf(" %s=%zu", m.name.c_str(), m.alerts);
  }
  std::printf("\n");
}

void print_report(const scsq::exec::RunReport& report, bool verbose) {
  std::printf("-- %zu result(s)", report.results.size());
  if (report.stopped) std::printf(" [stopped]");
  std::printf("\n");
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    if (i == 20 && report.results.size() > 25) {
      std::printf("   ... (%zu more)\n", report.results.size() - i);
      break;
    }
    std::printf("   %s\n", report.results[i].to_string().c_str());
  }
  std::printf("-- %.6f s simulated (%.3f ms setup), %s streamed, %zu stream process(es)\n",
              report.elapsed_s, report.setup_s * 1e3,
              scsq::util::format_bytes(report.stream_bytes).c_str(), report.rp_count);
  if (verbose) print_rp_table(report);
}

std::string trimmed(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return {};
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

// "\metrics", "\metrics link", "\metrics > snap.prom",
// "\metrics transport > snap.prom" — filter before '>', path after.
void parse_metrics_args(const std::string& rest, std::string& filter,
                        std::string& out_path) {
  const auto gt = rest.find('>');
  if (gt == std::string::npos) {
    filter = trimmed(rest);
  } else {
    filter = trimmed(rest.substr(0, gt));
    out_path = trimmed(rest.substr(gt + 1));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string source;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "scsql_shell: cannot open %s\n", argv[1]);
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  } else {
    std::stringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
  }

  scsq::ScsqConfig config;
  config.exec.buffer_bytes = env_u64("SCSQ_BUFFER_BYTES", 64 * 1024);
  config.exec.send_buffers = static_cast<int>(env_u64("SCSQ_SEND_BUFFERS", 2));
  config.exec.max_results = static_cast<std::size_t>(env_u64("SCSQ_MAX_RESULTS", 0));
  if (env_u64("SCSQ_SMART_SELECT", 0) != 0) {
    config.exec.node_selection = scsq::exec::NodeSelection::kSpread;
  }
  const bool verbose = env_u64("SCSQ_VERBOSE", 0) != 0;

  std::signal(SIGINT, on_sigint);

  scsq::Scsq scsq(config);
  scsq::sim::Trace trace;
  const char* trace_path = std::getenv("SCSQ_TRACE");
  if (trace_path != nullptr) scsq.machine().set_trace(&trace);
  scsq::exec::RunReport last_report;
  bool have_report = false;
  bool watch_on = scsq.engine().sampler().enabled();  // SCSQ_SAMPLE_INTERVAL
  std::string watch_series = "transport.link.bytes";
  // Live \watch: one flushed line per window, as the run progresses.
  scsq.engine().add_window_listener(
      [&](const scsq::obs::Sampler::Window& w, std::size_t) {
        if (watch_on) print_watch_window(w, watch_series);
      });
  const auto run_pending = [&](std::string& pending) {
    for (const auto& statement : scsq::scsql::parse_script(pending)) {
      if (statement.function) {
        scsq.engine().register_function(statement.function);
        std::printf("-- registered function '%s'\n", statement.function->name.c_str());
        continue;
      }
      std::printf(">> %s;\n", statement.query->to_string().c_str());
      last_report = scsq.engine().run_statement(statement);
      have_report = true;
      print_report(last_report, verbose);
      if (watch_on) print_watch_summary(scsq, watch_series);
      print_monitor_summary(scsq);
    }
    pending.clear();
  };

  try {
    // Line-based pass so shell commands (\metrics, \explain analyze,
    // \profile) can punctuate the SCSQL statements; the text between
    // commands goes to the parser unchanged.
    std::string pending;
    // Statement text being collected for \explain analyze (multi-line,
    // up to the terminating ';'); empty = not collecting.
    std::string explain_pending;
    std::istringstream lines(source);
    std::string line;
    while (std::getline(lines, line)) {
      const std::string t = trimmed(line);
      if (!explain_pending.empty()) {
        explain_pending += line;
        explain_pending += '\n';
        if (t.find(';') == std::string::npos) continue;
        run_pending(explain_pending);
        print_profile(scsq, have_report ? &last_report : nullptr);
        explain_pending.clear();
        continue;
      }
      if (t.rfind("\\metrics", 0) == 0 &&
          (t.size() == 8 || t[8] == ' ' || t[8] == '\t' || t[8] == '>')) {
        run_pending(pending);
        std::string filter, out_path;
        parse_metrics_args(t.substr(8), filter, out_path);
        print_metrics(scsq, have_report ? &last_report : nullptr, filter, out_path);
        continue;
      }
      if (t == "\\profile") {
        run_pending(pending);
        print_profile(scsq, have_report ? &last_report : nullptr);
        continue;
      }
      if (t.rfind("\\watch", 0) == 0 &&
          (t.size() == 6 || t[6] == ' ' || t[6] == '\t')) {
        run_pending(pending);
        std::istringstream args(t.substr(6));
        std::string word;
        args >> word;
        if (word == "off" || word == "0") {
          scsq.engine().set_sample_interval(0.0);
          watch_on = false;
          std::printf("-- watch off\n");
          continue;
        }
        char* end = nullptr;
        const double interval = std::strtod(word.c_str(), &end);
        if (word.empty() || end == nullptr || *end != '\0' || interval <= 0.0) {
          std::printf("-- usage: \\watch <interval_s> [series] | \\watch off\n");
          continue;
        }
        std::string series;
        args >> series;
        if (!series.empty()) watch_series = series;
        scsq.engine().set_sample_interval(interval);
        watch_on = true;
        std::printf("-- watch on: %g s windows, series '%s'\n", interval,
                    watch_series.c_str());
        continue;
      }
      if (t.rfind("\\monitors", 0) == 0 && (t.size() == 9 || t[9] == ' ')) {
        run_pending(pending);
        const auto monitors = scsq.engine().monitors();
        if (monitors.empty()) {
          std::printf("-- no monitors registered\n");
          continue;
        }
        for (const auto& m : monitors) {
          std::printf("-- monitor %s (%zu alert(s) last statement): %s\n",
                      m.name.c_str(), m.alerts, m.query.c_str());
        }
        continue;
      }
      if (t.rfind("\\unmonitor", 0) == 0 && (t.size() == 10 || t[10] == ' ')) {
        run_pending(pending);
        const std::string name = trimmed(t.substr(10));
        if (name.empty()) {
          for (const auto& m : scsq.engine().monitors()) {
            scsq.engine().unregister_monitor(m.name);
          }
          std::printf("-- all monitors removed\n");
        } else if (scsq.engine().unregister_monitor(name)) {
          std::printf("-- monitor %s removed\n", name.c_str());
        } else {
          std::printf("-- no monitor named '%s'\n", name.c_str());
        }
        continue;
      }
      if (t.rfind("\\monitor", 0) == 0 && (t.size() == 8 || t[8] == ' ')) {
        run_pending(pending);
        const std::string query = trimmed(t.substr(8));
        if (query.empty()) {
          std::printf("-- usage: \\monitor <introspection query>\n");
          continue;
        }
        try {
          const std::string name = scsq.engine().register_monitor(query);
          std::printf("-- monitor %s registered: %s\n", name.c_str(), query.c_str());
          if (!scsq.engine().sampler().enabled()) {
            std::printf("-- note: sampler is off; arm it with \\watch <interval_s> "
                        "(or SCSQ_SAMPLE_INTERVAL) for the monitor to fire\n");
          }
        } catch (const scsq::scsql::Error& e) {
          std::printf("-- monitor rejected: %s\n", e.what());
        }
        continue;
      }
      if (t.rfind("\\explain analyze", 0) == 0) {
        run_pending(pending);
        std::string stmt = trimmed(t.substr(16));
        if (stmt.empty()) {
          std::printf("-- usage: \\explain analyze <query>;\n");
          continue;
        }
        if (stmt.find(';') == std::string::npos) {
          explain_pending = stmt + '\n';  // keep collecting lines
          continue;
        }
        run_pending(stmt);
        print_profile(scsq, have_report ? &last_report : nullptr);
        continue;
      }
      pending += line;
      pending += '\n';
    }
    if (!explain_pending.empty()) {
      run_pending(explain_pending);
      print_profile(scsq, have_report ? &last_report : nullptr);
    }
    run_pending(pending);
  } catch (const scsq::scsql::Error& e) {
    std::fprintf(stderr, "scsql error: %s\n", e.what());
    return 1;
  }
  if (trace_path != nullptr) {
    std::ofstream out(trace_path);
    trace.write_json(out);
    std::printf("-- trace (%zu events) written to %s\n", trace.size(), trace_path);
  }
  return 0;
}
